"""Vectorised numpy N-lane simulation backend ("vector" engine).

The compiled backend (:mod:`repro.core.compiled`) made *one* run cheap;
batching (:mod:`repro.core.batch`) amortised the lowering over many
runs — but each vector of a batch still replays the whole Python event
loop on its own.  This module takes the remaining step the ROADMAP
calls "SIMD-style N-vector stepping": advance **N stimulus vectors in
lockstep** over one completed :meth:`CompiledNetlist.as_numpy` export,
so the per-event Python interpreter cost is paid once per *wave* of up
to N events instead of once per event.

The machine (:class:`_VectorKernel`) is a struct-of-arrays event
kernel:

* one shared, append-only **event pool** (``time/uid/value/t50/dur/
  rising/state/prev`` numpy columns) holds every lane's events;
* per-(lane, gate-input) pending-event **stacks** are intrusive linked
  lists through the pool's ``prev`` column, with a dense
  ``top_eid[lane, uid]`` head table — so the inertial rule's
  "previous event" lookup is one vectorised gather;
* per-lane **binary heaps** of ``(time, seq, eid)`` tuples order each
  lane's events exactly as the scalar backends do (lazy cancellation,
  like the compiled heap queue);
* each **wave** pops at most one runnable event per lane and executes
  them all at once: truth-table gate evaluation, delay-arc arithmetic,
  degradation and the inertial decision are numpy expressions over the
  popped lanes, with per-lane divergence handled by masking.

Bit-identity with the reference engine is a hard contract
(``tests/core/test_vector_parity.py``): every float expression below
performs the same IEEE-754 operations in the same order as the scalar
kernels — numpy float64 arithmetic is bit-identical to CPython's for
``+ - * /`` — and the degradation exponential goes through
``math.exp`` element-wise because ``numpy.exp`` differs from libm in
the last ulp on some inputs.  Masked lanes simply skip work; they
never change another lane's arithmetic.

Two front doors:

* ``engine_kind="vector"`` on :func:`repro.core.engine.simulate` (and
  everywhere else ``ENGINE_KINDS`` reaches — service workers, the
  server registry, the CLI): :class:`VectorSimulator`, the standard
  single-stimulus :class:`EngineBase` protocol driving a one-lane
  kernel.  Correct everywhere, but the numpy dispatch overhead per
  single-event wave makes it *slower* than ``"compiled"`` at N=1.
* ``simulate_batch(..., engine_kind="vector")``: the lockstep fast
  path (:meth:`VectorSimulator.run_lockstep_batch`) — all N vectors in
  one kernel, which is where the throughput lives
  (``benchmarks/test_vector_speedup.py``).
"""

from __future__ import annotations

import time as _time
from bisect import insort as _insort
from heapq import heappop, heappush
from math import exp as _exp, inf as _inf
from typing import Dict, List, Mapping, Optional, Sequence

from ..circuit.evaluate import evaluate_netlist
from ..circuit.logic import evaluate as evaluate_function
from ..circuit.netlist import Net, Netlist
from .. import config as _config_module
from ..config import DelayMode, InertialPolicy, SimulationConfig
from ..errors import SimulationError, SimulationLimitError, StimulusError
from .compiled import CompiledNetlist
from .engine import (
    EngineBase,
    FilteredEventRecord,
    SimulationResult,
    register_engine,
)
from .stats import SimulationStatistics
from .trace import TraceSet
from .transition import Transition

try:  # pragma: no cover - numpy present in CI
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

# Event states, matching the compiled backend's entry lifecycle.
_PENDING, _CANCELLED, _EXECUTED = 0, 1, 2

#: Waves at or below this many active lanes run the scalar per-event
#: path: numpy dispatch costs ~60 µs per wave regardless of width, so
#: thin waves (the single-lane engine wrapper, lockstep tail drains)
#: are cheaper event by event.  Both paths perform the identical IEEE
#: operation sequence and are pinned against each other by the parity
#: suites.
_SCALAR_WAVE_CUTOFF = 8

def _require_numpy() -> None:
    # Looked up through the module so a monkeypatched probe (tests
    # simulating a numpy-less install) gates this layer too; the
    # message is the one shared with SimulationConfig.validate().
    if _np is None or not _config_module.numpy_available():
        raise SimulationError(_config_module.NUMPY_REQUIRED_MESSAGE)


#: Queue disciplines the kernel implements per lane (the same names as
#: ``QUEUE_KINDS``, with lane-local implementations).
_VECTOR_QUEUE_KINDS = ("heap", "sorted-list")


def _check_queue_kind(queue_kind: str) -> None:
    """The single validation (and error string) for both entry points:
    engine construction and kernel construction."""
    if queue_kind not in _VECTOR_QUEUE_KINDS:
        raise SimulationError(
            "unknown queue kind %r for the vector engine (choose from "
            "%s)" % (queue_kind, list(_VECTOR_QUEUE_KINDS))
        )


def _sorted_queue_key(entry) -> tuple:
    return (-entry[0], -entry[1])


def _push_sorted(queue: list, entry) -> None:
    _insort(queue, entry, key=_sorted_queue_key)


def _pop_sorted(queue: list):
    return queue.pop()


# ----------------------------------------------------------------------
# the N-lane kernel
# ----------------------------------------------------------------------

class _EventPool:
    """Append-only struct-of-arrays store for every lane's events."""

    __slots__ = ("time", "uid", "value", "t50", "dur", "rising", "state",
                 "prev", "size", "_cap")

    def __init__(self, capacity: int = 1024):
        self._cap = capacity
        self.size = 0
        self.time = _np.empty(capacity, _np.float64)
        self.uid = _np.empty(capacity, _np.int64)
        self.value = _np.empty(capacity, _np.int8)
        self.t50 = _np.empty(capacity, _np.float64)
        self.dur = _np.empty(capacity, _np.float64)
        self.rising = _np.empty(capacity, _np.bool_)
        self.state = _np.empty(capacity, _np.int8)
        self.prev = _np.empty(capacity, _np.int64)

    def reset(self) -> None:
        self.size = 0

    def alloc(self, count: int) -> slice:
        """Reserve ``count`` fresh event ids; returns their slice."""
        need = self.size + count
        if need > self._cap:
            cap = self._cap
            while cap < need:
                cap *= 2
            for column in ("time", "uid", "value", "t50", "dur", "rising",
                           "state", "prev"):
                old = getattr(self, column)
                grown = _np.empty(cap, old.dtype)
                grown[: self.size] = old[: self.size]
                setattr(self, column, grown)
            self._cap = cap
        start = self.size
        self.size = need
        return slice(start, need)


class _VectorKernel:
    """N independent HALOTIS simulations advanced in lockstep waves.

    All dynamic state is ``(lanes, …)``-shaped numpy; the static
    circuit tables come from one :meth:`CompiledNetlist.as_numpy`
    export (read-only, shared).  The kernel itself is driven from the
    outside — :meth:`pop_runnable` + :meth:`execute_wave` — so the
    single-lane engine wrapper and the lockstep batch driver share one
    hot path.
    """

    def __init__(self, compiled: CompiledNetlist, config: SimulationConfig,
                 lanes: int, queue_kind: str = "heap"):
        _require_numpy()
        x = compiled.as_numpy()
        self.compiled = compiled
        self.config = config
        self.lanes = lanes
        # Per-lane queue discipline: a binary heap, or the descending
        # sorted list of the event-queue ablation (earliest entry last,
        # so pops are O(1) either way).  Identical (time, seq) order.
        _check_queue_kind(queue_kind)
        if queue_kind == "heap":
            self._queue_push = heappush
            self._head = 0
            self._head_pop = heappop
        else:
            self._queue_push = _push_sorted
            self._head = -1
            self._head_pop = _pop_sorted

        policy = config.inertial_policy
        if policy not in (InertialPolicy.EVENT_ORDER,
                          InertialPolicy.PEAK_VOLTAGE):
            raise ValueError("unknown inertial policy %r" % (policy,))
        self._event_order = policy is InertialPolicy.EVENT_ORDER
        self._use_ddm = config.delay_mode is DelayMode.DDM
        self._min_delay = config.min_delay
        self._resolution = config.time_resolution
        self._max_events = config.max_events
        self._record_traces = config.record_traces
        self._record_filtered = config.record_filtered

        # Static tables (all read-only, straight from the export).
        self.vt_fraction = x["vt_fraction"]
        self.fanout_offsets = x["fanout_offsets"]
        self.fanout_targets = x["fanout_targets"]
        self.gate_input_offsets = x["gate_input_offsets"]
        self.gate_output_net = x["gate_output_net"]
        self.gate_arity = x["gate_arity"]
        self.gate_tables = x["gate_tables"]
        self.gate_table_offsets = x["gate_table_offsets"]
        self.input_gate = x["input_gate"]
        self.input_pin = x["input_pin"]
        self.input_net = x["input_net"]
        self.arc_rise = x["arc_rise"]
        self.arc_fall = x["arc_fall"]
        # (2, num_inputs, 6): arc_stack[edge, uid] with edge 1 = rising,
        # so one gather replaces a two-sided where() in the hot path.
        self.arc_stack = _np.stack([self.arc_fall, self.arc_rise])
        self.net_is_pi = x["net_is_pi"]
        self.net_constant = x["net_constant"]
        self.net_driver = x["net_driver"]
        self.gate_has_table = (
            self.gate_table_offsets[1:] > self.gate_table_offsets[:-1]
        )
        self.num_nets = compiled.num_nets
        self.num_gates = compiled.num_gates
        self.num_inputs = compiled.num_inputs
        self.max_arity = (
            int(self.gate_arity.max()) if self.num_gates else 0
        )

        # Dynamic per-lane state (shapes fixed for the kernel lifetime).
        self.gate_word = _np.zeros((lanes, self.num_gates), _np.int64)
        self.gate_out = _np.zeros((lanes, self.num_gates), _np.int8)
        self.gate_last = _np.full((lanes, self.num_gates), _np.nan)
        self.pi = _np.zeros((lanes, self.num_nets), _np.int8)
        self.toggles = _np.zeros((lanes, self.num_nets), _np.int64)
        self.top_eid = _np.full((lanes, self.num_inputs), -1, _np.int64)
        self.now = _np.zeros(lanes, _np.float64)
        self.seq = _np.zeros(lanes, _np.int64)
        self.events_executed = _np.zeros(lanes, _np.int64)
        self.events_scheduled = _np.zeros(lanes, _np.int64)
        self.events_filtered = _np.zeros(lanes, _np.int64)
        self.late_events = _np.zeros(lanes, _np.int64)
        self.transitions_emitted = _np.zeros(lanes, _np.int64)
        self.source_transitions = _np.zeros(lanes, _np.int64)
        self.transitions_degraded = _np.zeros(lanes, _np.int64)
        self.transitions_fully_degraded = _np.zeros(lanes, _np.int64)
        # Python-list mirrors of the static tables for the scalar path:
        # plain-int indexing beats numpy scalar boxing event by event.
        # tolist() round-trips float64 exactly, so both paths read the
        # same IEEE values.
        self._fo_list = self.fanout_offsets.tolist()
        self._ft_list = self.fanout_targets.tolist()
        self._vt_list = self.vt_fraction.tolist()
        self._ig_list = self.input_gate.tolist()
        self._ip_list = self.input_pin.tolist()
        self._gon_list = self.gate_output_net.tolist()
        self._goff_list = self.gate_input_offsets.tolist()
        self._toff_list = self.gate_table_offsets.tolist()
        self._tables_list = self.gate_tables.tolist()
        self._has_table_list = self.gate_has_table.tolist()
        # The compiled lowering's original per-uid arc tuples: Python
        # floats, byte-identical to the arc_rise/arc_fall rows.
        self._arcs = (compiled.arc_fall, compiled.arc_rise)
        # Flat views over the (lanes, …) state: one flat index per
        # (lane, column) pair is computed once per wave and reused for
        # every gather/scatter — 1-D fancy indexing is markedly cheaper
        # than repeated 2-D tuple indexing on small arrays.  The views
        # stay valid because the backing arrays are never reallocated.
        self.gate_word_flat = self.gate_word.reshape(-1)
        self.gate_out_flat = self.gate_out.reshape(-1)
        self.gate_last_flat = self.gate_last.reshape(-1)
        self.toggles_flat = self.toggles.reshape(-1)
        self.top_eid_flat = self.top_eid.reshape(-1)
        self.pool = _EventPool()
        self.heaps: List[list] = [[] for _ in range(lanes)]
        self.toggles_dirty = False
        # Observability: plain ints bumped once per wave (two adds; the
        # registry is only touched after the run — docs/observability.md).
        self.waves_executed = 0
        self.lanes_executed = 0
        #: per lane: NetTrace list indexed by net id (None = not recording).
        self.trace_lists: List[Optional[list]] = [None] * lanes
        #: per lane: destination for FilteredEventRecords.
        self.filtered_logs: List[list] = [[] for _ in range(lanes)]

    # -- lifecycle -----------------------------------------------------

    def dc_values(self, lane_inputs: Sequence[Mapping[str, int]],
                  seed: Optional[Mapping[str, int]] = None):
        """DC value of every net per lane, as a ``(lanes, nets)`` array.

        The vectorised twin of
        :func:`repro.circuit.evaluate.evaluate_netlist`: identical
        input validation per lane, then one topological sweep
        evaluating each gate across all lanes at once.  Cyclic
        netlists fall back to the scalar evaluator per lane (same
        relaxation, same errors), so the result is always exactly what
        N scalar initialisations would have produced.
        """
        compiled = self.compiled
        netlist = compiled.netlist
        names = compiled.net_names
        pi_names = [
            names[net] for net in _np.flatnonzero(self.net_is_pi).tolist()
        ]
        pi_set = frozenset(pi_names)
        for input_values in lane_inputs:
            for name in pi_names:
                if name not in input_values:
                    raise StimulusError(
                        "missing value for primary input %r" % name
                    )
                value = input_values[name]
                if value not in (0, 1):
                    raise StimulusError(
                        "input %r: value must be 0 or 1, got %r"
                        % (name, value)
                    )
            for name in input_values:
                if name not in pi_set:
                    raise StimulusError("%r is not a primary input" % name)
        try:
            order = netlist.topological_gates()
        except Exception:
            # Cyclic circuit: Gauss–Seidel relaxation, lane by lane —
            # exactly the scalar path, errors included.
            rows = [
                evaluate_netlist(
                    netlist, dict(input_values),
                    seed=dict(seed) if seed else None,
                )
                for input_values in lane_inputs
            ]
            return _np.array(
                [[row.get(name, 0) for name in names] for row in rows],
                _np.int64,
            ).reshape(len(lane_inputs), self.num_nets)

        values = _np.zeros((len(lane_inputs), self.num_nets), _np.int64)
        constant_ids = _np.flatnonzero(self.net_constant >= 0)
        if constant_ids.size:
            values[:, constant_ids] = self.net_constant[constant_ids]
        pi_ids = [netlist.nets[name].index for name in pi_names]
        for lane, input_values in enumerate(lane_inputs):
            row = values[lane]
            for net, name in zip(pi_ids, pi_names):
                row[net] = input_values[name]
        offsets = self.gate_input_offsets
        input_net = self.input_net
        table_offsets = self.gate_table_offsets
        tables = self.gate_tables
        for gate_obj in order:
            gate = gate_obj.index
            start = int(offsets[gate])
            arity = int(self.gate_arity[gate])
            word = values[:, input_net[start]].copy()
            for bit in range(1, arity):
                word |= values[:, input_net[start + bit]] << bit
            if self.gate_has_table[gate]:
                out = tables[table_offsets[gate] + word]
            else:  # pragma: no cover - only hand-built cells exceed cap
                function = compiled.gate_functions[gate]
                out = _np.array([
                    evaluate_function(
                        function,
                        [(w >> bit) & 1 for bit in range(arity)],
                    )
                    for w in word.tolist()
                ], _np.int64)
            values[:, self.gate_output_net[gate]] = out
        return values

    def reset(self, net_values, start_time: float = 0.0) -> None:
        """(Re-)initialise every lane from ``(lanes, nets)`` DC values
        (see :meth:`dc_values`)."""
        input_vals = net_values[:, self.input_net]
        self.gate_word.fill(0)
        offsets = self.gate_input_offsets[:-1]
        for bit in range(self.max_arity):
            wide = _np.flatnonzero(self.gate_arity > bit)
            self.gate_word[:, wide] |= (
                input_vals[:, offsets[wide] + bit] << bit
            )
        self.gate_out[:] = net_values[:, self.gate_output_net]
        # Non-PI entries are never read; a straight copy is cheapest.
        self.pi[:] = net_values
        self.gate_last.fill(_np.nan)
        self.toggles.fill(0)
        self.top_eid.fill(-1)
        self.now.fill(start_time)
        self.seq.fill(0)
        for counter in (self.events_executed, self.events_scheduled,
                        self.events_filtered, self.late_events,
                        self.transitions_emitted, self.source_transitions,
                        self.transitions_degraded,
                        self.transitions_fully_degraded):
            counter.fill(0)
        self.pool.reset()
        for heap in self.heaps:
            heap.clear()
        self.toggles_dirty = False
        self.waves_executed = 0
        self.lanes_executed = 0

    # -- per-lane queue primitives -------------------------------------

    def pop_runnable(self, lane: int, until: float) -> int:
        """Pop the lane's earliest live event at or before ``until``
        (-1 when there is none)."""
        heap = self.heaps[lane]
        state = self.pool.state
        head = self._head
        pop = self._head_pop
        while heap:
            entry = heap[head]
            if state[entry[2]] != _PENDING:
                pop(heap)
                continue
            if entry[0] > until:
                return -1
            pop(heap)
            return entry[2]
        return -1

    def peek_time(self, lane: int) -> Optional[float]:
        heap = self.heaps[lane]
        state = self.pool.state
        head = self._head
        pop = self._head_pop
        while heap:
            entry = heap[head]
            if state[entry[2]] != _PENDING:
                pop(heap)
                continue
            return entry[0]
        return None

    def clear_lane(self, lane: int) -> None:
        self.heaps[lane].clear()

    # -- the hot path --------------------------------------------------

    def execute_wave(self, lanes, eids) -> None:
        """Execute one popped event per lane in ``lanes``, vectorised.

        Mirrors ``CompiledSimulator._execute`` statement for statement;
        each numpy expression performs the identical IEEE operation
        sequence per lane.  Thin waves fall through to the scalar
        per-event twin (same arithmetic, cheaper dispatch).
        """
        self.waves_executed += 1
        self.lanes_executed += int(lanes.size)
        if lanes.size <= _SCALAR_WAVE_CUTOFF:
            for lane, eid in zip(lanes.tolist(), eids.tolist()):
                self.execute_scalar(lane, eid)
            return
        pool = self.pool
        if (self.events_executed[lanes] >= self._max_events).any():
            lane = int(lanes[
                int((self.events_executed[lanes] >= self._max_events).argmax())
            ])
            raise SimulationLimitError(
                "event budget (%d) exhausted at t=%.4f ns in lane %d — "
                "zero-delay oscillation?"
                % (self._max_events, float(self.now[lane]), lane)
            )
        times = pool.time[eids]
        self.now[lanes] = times
        self.events_executed[lanes] += 1
        pool.state[eids] = _EXECUTED

        uid = pool.uid[eids]
        value = pool.value[eids]
        gate = self.input_gate[uid]
        pin = self.input_pin[uid]
        gate_flat = lanes * self.num_gates + gate
        words = self.gate_word_flat[gate_flat]
        current = (words >> pin) & 1
        changed = current != value
        if not changed.all():
            # Defensive: alternation normally guarantees a change here.
            lanes = lanes[changed]
            if lanes.size == 0:
                return
            eids = eids[changed]
            uid = uid[changed]
            gate = gate[changed]
            pin = pin[changed]
            gate_flat = gate_flat[changed]
            words = words[changed]
            times = times[changed]
        words = words ^ (_np.int64(1) << pin)
        self.gate_word_flat[gate_flat] = words

        tabled = self.gate_has_table[gate]
        if tabled.all():
            output = self.gate_tables[self.gate_table_offsets[gate] + words]
        else:  # pragma: no cover - only hand-built cells exceed the cap
            output = _np.empty(lanes.size, _np.int8)
            output[tabled] = self.gate_tables[
                self.gate_table_offsets[gate[tabled]] + words[tabled]
            ]
            for j in _np.flatnonzero(~tabled).tolist():
                wide_gate = int(gate[j])
                bits = [
                    int(words[j] >> bit) & 1
                    for bit in range(int(self.gate_arity[wide_gate]))
                ]
                output[j] = evaluate_function(
                    self.compiled.gate_functions[wide_gate], bits
                )
        switched = output != self.gate_out_flat[gate_flat]
        if not switched.all():
            lanes = lanes[switched]
            if lanes.size == 0:
                return
            eids = eids[switched]
            uid = uid[switched]
            gate = gate[switched]
            gate_flat = gate_flat[switched]
            times = times[switched]
            output = output[switched]
        self.gate_out_flat[gate_flat] = output

        rising = output == 1
        tau_in = pool.dur[eids]
        arc = self.arc_stack[output, uid]
        tp0 = arc[:, 0] + arc[:, 1] * tau_in
        tau_out = arc[:, 2] + arc[:, 3] * tau_in

        min_delay = self._min_delay
        factor = None
        tp = _np.where(tp0 > min_delay, tp0, min_delay)
        if self._use_ddm:
            factor = _np.ones(lanes.size)
            last = self.gate_last_flat[gate_flat]
            with_last = _np.flatnonzero(~_np.isnan(last))
            if with_last.size:
                # paper eq. 1 with eq. 2/3 folded into tau_deg / t0_coef
                elapsed = times[with_last] - last[with_last]
                t_offset = arc[with_last, 5] * tau_in[with_last]
                tau_deg = arc[with_last, 4]
                sub_factor = _np.empty(with_last.size)
                degenerate = tau_deg <= 0.0
                if degenerate.any():
                    sub_factor[degenerate] = _np.where(
                        elapsed[degenerate] > t_offset[degenerate], 1.0, 0.0
                    )
                regular = _np.flatnonzero(~degenerate)
                if regular.size:
                    argument = (
                        -(elapsed[regular] - t_offset[regular])
                        / tau_deg[regular]
                    )
                    # element-wise math.exp: numpy.exp drifts by one ulp
                    # on some inputs, which would break bit-identity.
                    sub_factor[regular] = 1.0 - _np.array(
                        [_exp(v) for v in argument.tolist()], _np.float64
                    )
                factor[with_last] = sub_factor
                scaled = tp0[with_last] * sub_factor
                scaled = _np.where(scaled < min_delay, min_delay, scaled)
                tp[with_last] = _np.where(
                    sub_factor <= 0.0, min_delay, scaled
                )
        t50 = times + tp
        self.gate_last_flat[gate_flat] = t50
        out_net = self.gate_output_net[gate]
        self.transitions_emitted[lanes] += 1
        self.toggles_flat[lanes * self.num_nets + out_net] += 1
        self.toggles_dirty = True
        if factor is not None:
            degraded = factor < 1.0
            if degraded.any():
                self.transitions_degraded[lanes[degraded]] += 1
                fully = factor <= 0.0
                if fully.any():
                    self.transitions_fully_degraded[lanes[fully]] += 1
        if self._record_traces:
            net_names = self.compiled.net_names
            lane_list = lanes.tolist()
            net_list = out_net.tolist()
            for j, (lane, net) in enumerate(zip(lane_list, net_list)):
                traces = self.trace_lists[lane]
                if traces is not None:
                    traces[net].append(Transition(
                        t50=float(t50[j]),
                        duration=float(tau_out[j]),
                        rising=bool(rising[j]),
                        net_name=net_names[net],
                        degradation_factor=(
                            1.0 if factor is None else float(factor[j])
                        ),
                        cause_time=float(times[j]),
                    ))
        self.broadcast(lanes, out_net, t50, tau_out, rising, times)

    def execute_scalar(self, lane: int, eid: int) -> None:
        """One lane's event on the scalar path.

        A statement-for-statement port of
        ``CompiledSimulator._execute`` over the pool columns — Python
        floats throughout, so the arithmetic is trivially identical to
        the reference backend.
        """
        pool = self.pool
        if self.events_executed[lane] >= self._max_events:
            raise SimulationLimitError(
                "event budget (%d) exhausted at t=%.4f ns in lane %d — "
                "zero-delay oscillation?"
                % (self._max_events, float(self.now[lane]), lane)
            )
        time_now = float(pool.time[eid])
        self.now[lane] = time_now
        self.events_executed[lane] += 1
        pool.state[eid] = _EXECUTED

        uid = int(pool.uid[eid])
        value = int(pool.value[eid])
        gate = self._ig_list[uid]
        pin = self._ip_list[uid]
        word = int(self.gate_word[lane, gate])
        if (word >> pin) & 1 == value:
            # Defensive: alternation normally guarantees a change here.
            return
        word ^= 1 << pin
        self.gate_word[lane, gate] = word
        if self._has_table_list[gate]:
            output = self._tables_list[self._toff_list[gate] + word]
        else:  # pragma: no cover - only hand-built cells exceed the cap
            arity = self._goff_list[gate + 1] - self._goff_list[gate]
            output = evaluate_function(
                self.compiled.gate_functions[gate],
                [(word >> bit) & 1 for bit in range(arity)],
            )
        if output == self.gate_out[lane, gate]:
            return
        self.gate_out[lane, gate] = output

        rising = output == 1
        tau_in = float(pool.dur[eid])
        tp0_base, d_slew, tau_base, s_slew, tau_deg, t0_coef = (
            self._arcs[output][uid]
        )
        tp0 = tp0_base + d_slew * tau_in
        tau_out = tau_base + s_slew * tau_in

        last = self.gate_last[lane, gate]
        if not self._use_ddm or last != last:  # NaN = no previous output
            factor = 1.0
            tp = tp0 if tp0 > self._min_delay else self._min_delay
        else:
            # paper eq. 1 with eq. 2/3 folded into tau_deg / t0_coef
            elapsed = time_now - float(last)
            t_offset = t0_coef * tau_in
            if tau_deg <= 0.0:
                factor = 1.0 if elapsed > t_offset else 0.0
            else:
                factor = 1.0 - _exp(-(elapsed - t_offset) / tau_deg)
            if factor <= 0.0:
                tp = self._min_delay
            else:
                tp = tp0 * factor
                if tp < self._min_delay:
                    tp = self._min_delay

        t50 = time_now + tp
        self.gate_last[lane, gate] = t50
        out_net = self._gon_list[gate]
        self.transitions_emitted[lane] += 1
        self.toggles[lane, out_net] += 1
        self.toggles_dirty = True
        if factor < 1.0:
            self.transitions_degraded[lane] += 1
            if factor <= 0.0:
                self.transitions_fully_degraded[lane] += 1
        if self._record_traces:
            traces = self.trace_lists[lane]
            if traces is not None:
                traces[out_net].append(Transition(
                    t50=t50,
                    duration=tau_out,
                    rising=rising,
                    net_name=self.compiled.net_names[out_net],
                    degradation_factor=factor,
                    cause_time=time_now,
                ))
        self.broadcast_scalar(lane, out_net, t50, tau_out, rising, time_now)

    def broadcast_scalar(self, lane: int, net_index: int, t50: float,
                         duration: float, rising: bool, now: float) -> None:
        """One lane's fanout broadcast on the scalar path (the twin of
        ``CompiledSimulator._broadcast_indexed``)."""
        pool = self.pool
        heap = self.heaps[lane]
        top_flat = self.top_eid_flat
        row_base = lane * self.num_inputs
        value = 1 if rising else 0
        seq = int(self.seq[lane])
        scheduled = 0
        resolution = self._resolution
        event_order = self._event_order
        for position in range(self._fo_list[net_index],
                              self._fo_list[net_index + 1]):
            uid = self._ft_list[position]
            fraction = self._vt_list[uid]
            if rising:
                crossing = t50 + duration * (fraction - 0.5)
            else:
                crossing = t50 + duration * (0.5 - fraction)
            top_index = row_base + uid
            previous = int(top_flat[top_index])

            if previous >= 0 and pool.state[previous] == _PENDING:
                # inertial decision, inlined (see repro.core.inertial)
                previous_time = float(pool.time[previous])
                if event_order:
                    if crossing <= previous_time + resolution:
                        event_time = None
                    else:
                        event_time = crossing
                else:
                    event_time = self._peak_voltage_time(
                        crossing, previous, t50, duration, rising, fraction
                    )
                if event_time is None:
                    pool.state[previous] = _CANCELLED
                    top_flat[top_index] = previous = int(pool.prev[previous])
                    self.events_filtered[lane] += 1
                    if self._record_filtered:
                        compiled = self.compiled
                        self.filtered_logs[lane].append(FilteredEventRecord(
                            time_now=now,
                            gate_name=compiled.gate_names[self._ig_list[uid]],
                            pin_index=self._ip_list[uid],
                            net_name=compiled.net_names[net_index],
                            previous_event_time=previous_time,
                            new_event_time=crossing,
                        ))
                    continue
            else:
                event_time = crossing
                if previous >= 0 and crossing <= float(pool.time[previous]):
                    # The predecessor already executed; we cannot unwind
                    # the past, so the restoring event runs immediately.
                    self.late_events[lane] += 1
                    if event_time < now:
                        event_time = now
                elif crossing < now:
                    self.late_events[lane] += 1
                    event_time = now

            seq += 1
            block = pool.alloc(1)
            eid = block.start
            pool.time[eid] = event_time
            pool.uid[eid] = uid
            pool.value[eid] = value
            pool.t50[eid] = t50
            pool.dur[eid] = duration
            pool.rising[eid] = rising
            pool.state[eid] = _PENDING
            pool.prev[eid] = previous
            top_flat[top_index] = eid
            self._queue_push(heap, (event_time, seq, eid))
            scheduled += 1
        self.seq[lane] = seq
        self.events_scheduled[lane] += scheduled

    def broadcast(self, lanes, net_idx, t50, dur, rising, now_vals) -> None:
        """Fan ``lanes.size`` transitions out to their receiving inputs.

        The (transition, fanout-slot) pairs are flattened into one set
        of arrays — all pairs are independent within a wave because a
        wave holds at most one transition per lane and a net's fanout
        uids are distinct — then the inertial rule runs vectorised.
        Per-lane scheduling order (and therefore ``seq`` assignment)
        matches the scalar backends: segments are laid out in CSR
        order.
        """
        pool = self.pool
        offsets = self.fanout_offsets[net_idx]
        degrees = self.fanout_offsets[net_idx + 1] - offsets
        total = int(degrees.sum())
        if total == 0:
            return
        segment = _np.repeat(_np.arange(lanes.size), degrees)
        starts = _np.cumsum(degrees) - degrees
        position = offsets[segment] + (
            _np.arange(total) - starts[segment]
        )
        uid = self.fanout_targets[position]
        lane_rep = lanes[segment]
        t50_rep = t50[segment]
        dur_rep = dur[segment]
        rising_rep = rising[segment]
        now_rep = now_vals[segment]

        fraction = self.vt_fraction[uid]
        delta = _np.where(rising_rep, fraction - 0.5, 0.5 - fraction)
        crossing = t50_rep + dur_rep * delta

        top_flat = lane_rep * self.num_inputs + uid
        previous = self.top_eid_flat[top_flat]
        has_previous = previous >= 0
        previous_safe = _np.where(has_previous, previous, 0)
        previous_pending = has_previous & (
            pool.state[previous_safe] == _PENDING
        )
        previous_time = pool.time[previous_safe]

        event_time = crossing.copy()
        if self._event_order:
            # inertial decision, inlined (see repro.core.inertial)
            annihilate = previous_pending & (
                crossing <= previous_time + self._resolution
            )
        else:
            annihilate = _np.zeros(total, _np.bool_)
            for j in _np.flatnonzero(previous_pending).tolist():
                decided = self._peak_voltage_time(
                    float(crossing[j]), int(previous[j]), float(t50_rep[j]),
                    float(dur_rep[j]), bool(rising_rep[j]),
                    float(fraction[j]),
                )
                if decided is None:
                    annihilate[j] = True
                else:
                    event_time[j] = decided
        not_pending = ~previous_pending
        # The predecessor already executed; we cannot unwind the past,
        # so the restoring event runs immediately.
        late_executed = not_pending & has_previous & (
            crossing <= previous_time
        )
        if late_executed.any():
            event_time[late_executed] = _np.where(
                crossing[late_executed] < now_rep[late_executed],
                now_rep[late_executed],
                crossing[late_executed],
            )
        late_past = not_pending & ~late_executed & (crossing < now_rep)
        if late_past.any():
            event_time[late_past] = now_rep[late_past]
        late = late_executed | late_past
        if late.any():
            _np.add.at(self.late_events, lane_rep[late], 1)

        if annihilate.any():
            cancelled = previous[annihilate]
            pool.state[cancelled] = _CANCELLED
            self.top_eid_flat[top_flat[annihilate]] = pool.prev[cancelled]
            _np.add.at(self.events_filtered, lane_rep[annihilate], 1)
            if self._record_filtered:
                compiled = self.compiled
                for j in _np.flatnonzero(annihilate).tolist():
                    input_uid = int(uid[j])
                    self.filtered_logs[int(lane_rep[j])].append(
                        FilteredEventRecord(
                            time_now=float(now_rep[j]),
                            gate_name=compiled.gate_names[
                                int(self.input_gate[input_uid])
                            ],
                            pin_index=int(self.input_pin[input_uid]),
                            net_name=compiled.net_names[
                                int(net_idx[segment[j]])
                            ],
                            previous_event_time=float(
                                pool.time[int(previous[j])]
                            ),
                            new_event_time=float(crossing[j]),
                        )
                    )

        survives = ~annihilate
        count = int(survives.sum())
        if count == 0:
            return
        # Per-lane seq values in CSR slot order, annihilations excluded
        # (the scalar kernels only bump seq for events actually pushed).
        before = _np.concatenate(
            ([0], _np.cumsum(survives)[:-1])
        )
        per_segment = _np.bincount(
            segment[survives], minlength=lanes.size
        )
        segment_before = _np.cumsum(per_segment) - per_segment
        within = before - segment_before[segment]
        seqs = self.seq[lanes][segment] + 1 + within
        self.seq[lanes] += per_segment
        self.events_scheduled[lanes] += per_segment

        lane_new = lane_rep[survives]
        uid_new = uid[survives]
        top_new = top_flat[survives]
        block = pool.alloc(count)
        pool.time[block] = event_time[survives]
        pool.uid[block] = uid_new
        pool.value[block] = rising_rep[survives]
        pool.t50[block] = t50_rep[survives]
        pool.dur[block] = dur_rep[survives]
        pool.rising[block] = rising_rep[survives]
        pool.state[block] = _PENDING
        pool.prev[block] = self.top_eid_flat[top_new]
        new_ids = _np.arange(block.start, block.stop)
        self.top_eid_flat[top_new] = new_ids

        heaps = self.heaps
        push = self._queue_push
        for lane, when, order, eid in zip(
            lane_new.tolist(), event_time[survives].tolist(),
            seqs[survives].tolist(), new_ids.tolist(),
        ):
            push(heaps[lane], (when, order, eid))

    def _peak_voltage_time(
        self,
        crossing: float,
        previous_eid: int,
        t50: float,
        duration: float,
        rising: bool,
        fraction: float,
    ) -> Optional[float]:
        """Scalar PEAK_VOLTAGE rule; None means annihilate.

        Mirrors ``CompiledSimulator._peak_voltage_time`` over the pool
        columns of the previous entry (Python-float arithmetic, so the
        ablation policy stays bit-identical too).
        """
        pool = self.pool
        leading_rising = bool(pool.rising[previous_eid])
        previous_time = float(pool.time[previous_eid])
        if leading_rising == rising:
            if crossing <= previous_time + self._resolution:
                return None
            return crossing
        leading_duration = float(pool.dur[previous_eid])
        if leading_duration <= 0.0:  # pragma: no cover - durations are > 0
            peak = 1.0
        else:
            progress = (
                (t50 - 0.5 * duration)
                - (float(pool.t50[previous_eid]) - 0.5 * leading_duration)
            ) / leading_duration
            peak = min(1.0, max(0.0, progress))
        threshold_progress = fraction if leading_rising else 1.0 - fraction
        if peak <= threshold_progress:
            return None
        corrected = crossing - (1.0 - peak) * duration
        return max(corrected, previous_time + self._resolution)

    # -- inspection ----------------------------------------------------

    def lane_value(self, lane: int, net_index: int, net_name: str) -> int:
        constant = int(self.net_constant[net_index])
        if constant >= 0:
            return constant
        if self.net_is_pi[net_index]:
            return int(self.pi[lane, net_index])
        driver = int(self.net_driver[net_index])
        if driver < 0:
            raise SimulationError("net %r has no driver" % net_name)
        return int(self.gate_out[lane, driver])

    def lane_final_values(self, lane: int) -> Dict[str, int]:
        """Committed value of every net in one lane, as plain ints."""
        driverless = (
            (self.net_constant < 0) & (self.net_is_pi == 0)
            & (self.net_driver < 0)
        )
        if driverless.any():
            bad = int(_np.flatnonzero(driverless)[0])
            raise SimulationError(
                "net %r has no driver" % self.compiled.net_names[bad]
            )
        driver = _np.where(self.net_driver >= 0, self.net_driver, 0)
        values = _np.where(
            self.net_constant >= 0,
            self.net_constant,
            _np.where(
                self.net_is_pi == 1,
                self.pi[lane],
                self.gate_out[lane, driver],
            ),
        )
        return dict(zip(self.compiled.net_names, values.tolist()))

    def lane_toggles(self, lane: int) -> Dict[str, int]:
        names = self.compiled.net_names
        row = self.toggles[lane]
        hot = _np.flatnonzero(row).tolist()
        return {names[index]: int(row[index]) for index in hot}

    def lane_stats(self, lane: int) -> SimulationStatistics:
        return SimulationStatistics(
            events_executed=int(self.events_executed[lane]),
            events_scheduled=int(self.events_scheduled[lane]),
            events_filtered=int(self.events_filtered[lane]),
            late_events=int(self.late_events[lane]),
            transitions_emitted=int(self.transitions_emitted[lane]),
            source_transitions=int(self.source_transitions[lane]),
            transitions_degraded=int(self.transitions_degraded[lane]),
            transitions_fully_degraded=int(
                self.transitions_fully_degraded[lane]
            ),
            net_toggles=self.lane_toggles(lane),
        )


def _publish_lockstep_metrics(kernel: _VectorKernel, wall: float) -> None:
    """One batch's engine counters from the kernel's per-lane arrays.

    Summing the numpy columns here (once per batch) keeps the wave loop
    free of any observability work; lockstep bypasses ``run_stimulus``,
    so this is its twin of that function's post-run publication.
    """
    from ..obs import get_registry
    from .engine import publish_engine_metrics

    registry = get_registry()
    if not registry.enabled:
        return
    counts = {
        "events_executed": int(kernel.events_executed.sum()),
        "events_scheduled": int(kernel.events_scheduled.sum()),
        "events_filtered": int(kernel.events_filtered.sum()),
        "late_events": int(kernel.late_events.sum()),
        "transitions_emitted": int(kernel.transitions_emitted.sum()),
        "source_transitions": int(kernel.source_transitions.sum()),
        "transitions_degraded": int(kernel.transitions_degraded.sum()),
        "transitions_fully_degraded": int(
            kernel.transitions_fully_degraded.sum()
        ),
    }
    publish_engine_metrics(
        "vector", counts, runs=kernel.lanes, run_seconds=wall,
        phases={"lockstep": wall},
        waves=(kernel.waves_executed, kernel.lanes_executed),
        registry=registry,
    )


# ----------------------------------------------------------------------
# lockstep batch driver
# ----------------------------------------------------------------------

# Per-lane stimulus playback phases (mirroring run_stimulus: run to
# each change time, apply, run to horizon+settle, drain).
_PHASE_CHANGES, _PHASE_SETTLE, _PHASE_DRAIN = 0, 1, 2


class _LockstepDriver:
    """Plays N ``VectorSequence``-protocol stimuli through one kernel.

    Each lane follows exactly the :func:`repro.core.engine.run_stimulus`
    loop — run to the next change time, apply the word, settle past the
    horizon, drain — with its own clock; lanes only share the wave
    executor, never data.
    """

    def __init__(self, netlist: Netlist, kernel: _VectorKernel,
                 stimuli: Sequence, settle: float,
                 seed: Optional[Mapping[str, int]]):
        self.netlist = netlist
        self.kernel = kernel
        self.config = kernel.config
        lanes = len(stimuli)
        self.changes = [list(stimulus.iter_changes()) for stimulus in stimuli]
        self.limits = [stimulus.horizon + settle for stimulus in stimuli]
        self.cursor = [0] * lanes
        self.phase = [_PHASE_CHANGES] * lanes
        self.until = [0.0] * lanes
        self.done = [False] * lanes
        for lane in range(lanes):
            if self.changes[lane]:
                self.until[lane] = self.changes[lane][0][0]
            else:
                self.phase[lane] = _PHASE_SETTLE
                self.until[lane] = self.limits[lane]

        net_values = kernel.dc_values(
            [stimulus.initial_values(netlist) for stimulus in stimuli],
            seed=seed,
        )
        kernel.reset(net_values)
        vdd = netlist.vdd
        names = kernel.compiled.net_names
        self.trace_sets = [TraceSet(vdd) for _ in range(lanes)]
        if self.config.record_traces:
            for lane in range(lanes):
                trace_set = self.trace_sets[lane]
                initial = net_values[lane].tolist()
                kernel.trace_lists[lane] = [
                    trace_set.create(name, initial[index])
                    for index, name in enumerate(names)
                ]

    def run(self) -> List[SimulationResult]:
        kernel = self.kernel
        lanes = kernel.lanes
        wall_start = _time.perf_counter()
        wave_lanes: List[int] = []
        wave_eids: List[int] = []
        pop = kernel.pop_runnable
        until = self.until
        done = self.done
        while True:
            wave_lanes.clear()
            wave_eids.clear()
            stalled: List[int] = []
            for lane in range(lanes):
                if done[lane]:
                    continue
                eid = pop(lane, until[lane])
                if eid >= 0:
                    wave_lanes.append(lane)
                    wave_eids.append(eid)
                else:
                    stalled.append(lane)
            # Stalled lanes advance through their stimulus phases until
            # each is runnable again (or finished).  Word applications
            # collected across lanes in one round are broadcast
            # together — one numpy pass per input rank instead of one
            # per (lane, input).
            while stalled:
                sources: List = []
                for lane in stalled:
                    self._advance_phase(lane, sources)
                if sources:
                    self._flush_sources(sources)
                still: List[int] = []
                for lane in stalled:
                    if done[lane]:
                        continue
                    eid = pop(lane, until[lane])
                    if eid >= 0:
                        wave_lanes.append(lane)
                        wave_eids.append(eid)
                    else:
                        still.append(lane)
                stalled = still
            if not wave_lanes:
                break
            kernel.execute_wave(
                _np.array(wave_lanes, _np.int64),
                _np.array(wave_eids, _np.int64),
            )
        wall = _time.perf_counter() - wall_start
        if self.config.collect_metrics:
            _publish_lockstep_metrics(kernel, wall)

        results = []
        for lane in range(lanes):
            trace_set = self.trace_sets[lane]
            trace_set.horizon = float(kernel.now[lane])
            stats = kernel.lane_stats(lane)
            # In-kernel time is shared by every lane of the wave; an
            # even split keeps aggregate_stats() comparable to a
            # sequential batch of the same vectors.
            stats.runtime_seconds = wall / lanes
            results.append(SimulationResult(
                traces=trace_set,
                stats=stats,
                final_values=kernel.lane_final_values(lane),
                simulator=None,
            ))
        return results

    def _advance_phase(self, lane: int, sources: List) -> None:
        kernel = self.kernel
        phase = self.phase[lane]
        if phase == _PHASE_CHANGES:
            at_time, assignments, slew = self.changes[lane][self.cursor[lane]]
            if at_time > kernel.now[lane]:
                kernel.now[lane] = at_time
            transitions = self._collect_word(lane, assignments, at_time, slew)
            if transitions:
                sources.append((lane, at_time, transitions))
            self.cursor[lane] += 1
            if self.cursor[lane] < len(self.changes[lane]):
                self.until[lane] = self.changes[lane][self.cursor[lane]][0]
            else:
                self.phase[lane] = _PHASE_SETTLE
                self.until[lane] = self.limits[lane]
        elif phase == _PHASE_SETTLE:
            if self.until[lane] > kernel.now[lane]:
                kernel.now[lane] = self.until[lane]
            self.phase[lane] = _PHASE_DRAIN
            self.until[lane] = _inf
        else:
            self.done[lane] = True

    def _collect_word(self, lane: int, assignments: Mapping[str, int],
                      at_time: float, slew: Optional[float]) -> List:
        """Mirror of ``EngineBase.apply_word``/``set_input`` for one lane:
        validate and commit the assignments, returning the source
        transitions to broadcast as ``(net_index, t50, ramp, rising)``
        in application (sorted-name) order."""
        kernel = self.kernel
        transitions = []
        for name in sorted(assignments):
            value = assignments[name]
            net = self.netlist.net(name)
            if not net.is_primary_input:
                raise StimulusError("%r is not a primary input" % name)
            if value not in (0, 1):
                raise StimulusError(
                    "input value must be 0 or 1, got %r" % (value,)
                )
            if kernel.pi[lane, net.index] == value:
                continue
            ramp = slew if slew is not None else (
                self.config.default_input_slew
            )
            if ramp <= 0.0:
                raise StimulusError("input slew must be positive")
            rising = value == 1
            t50 = at_time + 0.5 * ramp
            kernel.pi[lane, net.index] = value
            kernel.source_transitions[lane] += 1
            kernel.toggles[lane, net.index] += 1
            kernel.toggles_dirty = True
            traces = kernel.trace_lists[lane]
            if traces is not None:
                traces[net.index].append(Transition(
                    t50=t50,
                    duration=ramp,
                    rising=rising,
                    net_name=name,
                    cause_time=at_time,
                ))
            transitions.append((net.index, t50, ramp, rising))
        return transitions

    def _flush_sources(self, sources: List) -> None:
        """Broadcast collected source transitions, one rank per pass.

        Pass ``r`` carries the ``r``-th toggled input of every lane
        that has one — at most one transition per lane per pass, which
        is the independence the vectorised broadcast requires, and
        per-lane application order (hence ``seq`` assignment) matches
        the scalar engines exactly.
        """
        kernel = self.kernel
        rank = 0
        while True:
            rows = [
                (lane, at_time, transitions[rank])
                for lane, at_time, transitions in sources
                if rank < len(transitions)
            ]
            if not rows:
                return
            if len(rows) <= _SCALAR_WAVE_CUTOFF:
                for lane, at_time, (net, t50, ramp, rising) in rows:
                    kernel.broadcast_scalar(
                        lane, net, t50, ramp, rising, at_time
                    )
            else:
                kernel.broadcast(
                    _np.array([row[0] for row in rows], _np.int64),
                    _np.array([row[2][0] for row in rows], _np.int64),
                    _np.array([row[2][1] for row in rows], _np.float64),
                    _np.array([row[2][2] for row in rows], _np.float64),
                    _np.array([row[2][3] for row in rows], _np.bool_),
                    _np.array([row[1] for row in rows], _np.float64),
                )
            rank += 1


# ----------------------------------------------------------------------
# the registered backend
# ----------------------------------------------------------------------

class _LaneZeroQueue:
    """EngineBase-facing queue facade over lane 0 of the kernel.

    The kernel owns the real per-lane heaps; this adapter lets the
    shared :meth:`EngineBase.run`/`step` loops drive them.  Popped
    "events" are pool event ids (plain ints).
    """

    def __init__(self, simulator: VectorSimulator):
        self._simulator = simulator

    def _kernel(self) -> Optional[_VectorKernel]:
        return self._simulator._kernel

    def __len__(self) -> int:
        kernel = self._kernel()
        if kernel is None:
            return 0
        state = kernel.pool.state
        return sum(
            1 for entry in kernel.heaps[0] if state[entry[2]] == _PENDING
        )

    def __bool__(self) -> bool:
        kernel = self._kernel()
        return kernel is not None and kernel.peek_time(0) is not None

    def clear(self) -> None:
        kernel = self._kernel()
        if kernel is not None:
            kernel.clear_lane(0)

    def peek_time(self) -> Optional[float]:
        kernel = self._kernel()
        if kernel is None:
            return None
        return kernel.peek_time(0)

    def pop(self) -> Optional[int]:
        kernel = self._kernel()
        if kernel is None:
            return None
        eid = kernel.pop_runnable(0, _inf)
        return None if eid < 0 else eid


@register_engine("vector")
class VectorSimulator(EngineBase):
    """The numpy N-lane kernel behind the standard engine protocol.

    As a registered backend this class simulates one stimulus at a time
    (a one-lane kernel), so it slots into everything that consumes
    ``ENGINE_KINDS`` — ``simulate()``, service workers, the network
    server, the CLI.  Its reason to exist is the **lockstep batch**
    class method used by :func:`repro.core.batch.simulate_batch`, which
    advances all N vectors of a batch through one kernel; per-lane
    results are bit-identical to the reference backend either way.

    Args:
        netlist: the circuit; lowered on construction unless a
            pre-lowered ``compiled`` is supplied.
        config: engine knobs (the default is HALOTIS-DDM).
        queue_kind: per-lane event-queue implementation (same names as
            the other backends: ``"heap"`` or ``"sorted-list"``).
        compiled: optional pre-built :class:`CompiledNetlist` (must wrap
            ``netlist``); lets many simulators share one lowering.
    """

    lowers_netlist = True
    lockstep_batches = True
    cli_blurb = (
        "numpy N-lane kernel, steps whole batches in lockstep; needs numpy"
    )

    def __init__(
        self,
        netlist: Netlist,
        config: Optional[SimulationConfig] = None,
        queue_kind: str = "heap",
        compiled: Optional[CompiledNetlist] = None,
    ):
        self.ensure_available()
        if compiled is not None and compiled.netlist is not netlist:
            raise SimulationError(
                "compiled netlist does not wrap the given netlist"
            )
        self._cn = compiled if compiled is not None else netlist.compile()
        self._kernel: Optional[_VectorKernel] = None
        super().__init__(netlist, config=config, queue_kind=queue_kind)
        policy = self.config.inertial_policy
        if policy not in (InertialPolicy.EVENT_ORDER,
                          InertialPolicy.PEAK_VOLTAGE):
            raise ValueError("unknown inertial policy %r" % (policy,))
        self._lane0 = _np.array([0], _np.int64)

    @classmethod
    def ensure_available(cls) -> None:
        """Raise a clear :class:`SimulationError` when numpy is absent."""
        _require_numpy()

    @classmethod
    def run_lockstep_batch(
        cls,
        netlist: Netlist,
        stimuli: Sequence,
        config: Optional[SimulationConfig] = None,
        settle: float = 0.0,
        queue_kind: str = "heap",
        seed: Optional[Mapping[str, int]] = None,
    ) -> List[SimulationResult]:
        """All N stimuli through one kernel, one wave at a time.

        The fast path behind ``simulate_batch(...,
        engine_kind="vector")``; result ``i`` is bit-identical to
        ``simulate(netlist, stimuli[i], ...)`` on any backend.  Every
        result carries ``simulator=None`` (like sharded batches): the
        lanes share one kernel, so there is no per-vector engine to
        hand out.
        """
        cls.ensure_available()
        if config is None:
            config = SimulationConfig()
        config.validate()
        kernel = _VectorKernel(
            netlist.compile(), config, len(stimuli), queue_kind=queue_kind
        )
        driver = _LockstepDriver(netlist, kernel, stimuli, settle, seed)
        return driver.run()

    @property
    def compiled_netlist(self) -> CompiledNetlist:
        return self._cn

    def rebind_lowering(self) -> None:
        """Drop the cached kernel: it snapshots the ``as_numpy()``
        export (arc stack copy + list mirrors) at construction, so a
        patched lowering needs a fresh kernel on next ``initialize()``."""
        self._kernel = None

    def _make_queue(self, queue_kind: str):
        # Validated here (not only at kernel construction) so a bad
        # kind fails at make_engine() time like the other backends.
        _check_queue_kind(queue_kind)
        return _LaneZeroQueue(self)

    # ------------------------------------------------------------------
    # lifecycle hooks
    # ------------------------------------------------------------------

    def _build_state(
        self,
        input_values: Dict[str, int],
        seed: Optional[Dict[str, int]],
    ) -> Dict[str, int]:
        values = evaluate_netlist(self.netlist, input_values, seed=seed)
        if self._kernel is None:
            self._kernel = _VectorKernel(
                self._cn, self.config, 1, queue_kind=self.queue_kind
            )
        # .get: an undriven, fanout-free net has no DC value; the
        # placeholder row entry is never read (not a PI, no fanouts).
        self._kernel.reset(_np.array(
            [[values.get(name, 0) for name in self._cn.net_names]],
            _np.int64,
        ))
        return values

    def _after_initialize(self) -> None:
        kernel = self._kernel
        kernel.now[0] = self.now
        kernel.filtered_logs[0] = self.filtered_log
        if self.config.record_traces:
            kernel.trace_lists[0] = [
                self.traces[name] for name in self._cn.net_names
            ]
        else:
            kernel.trace_lists[0] = None

    # ------------------------------------------------------------------
    # stimulus hooks
    # ------------------------------------------------------------------

    def _pi_value(self, net: Net) -> int:
        return int(self._kernel.pi[0, net.index])

    def _commit_pi_value(self, net: Net, value: int) -> None:
        self._kernel.pi[0, net.index] = value

    def _count_toggle(self, net: Net) -> None:
        kernel = self._kernel
        kernel.toggles[0, net.index] += 1
        kernel.toggles_dirty = True

    def _broadcast_transition(self, transition: Transition, net: Net) -> None:
        kernel = self._kernel
        kernel.now[0] = self.now
        kernel.broadcast_scalar(
            0, net.index, transition.t50, transition.duration,
            transition.rising, self.now,
        )

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------

    def _execute(self, eid: int) -> None:
        kernel = self._kernel
        kernel.execute_wave(self._lane0, _np.array([eid], _np.int64))
        self.now = float(kernel.now[0])

    def _wave_counters(self):
        kernel = self._kernel
        if kernel is None:
            return None
        return (kernel.waves_executed, kernel.lanes_executed)

    def _after_run(self) -> None:
        # Mirror the kernel's per-lane counters into the result-facing
        # SimulationStatistics (source_transitions is maintained by
        # EngineBase.set_input and stays untouched).
        kernel = self._kernel
        stats = self.stats
        stats.events_executed = int(kernel.events_executed[0])
        stats.events_scheduled = int(kernel.events_scheduled[0])
        stats.events_filtered = int(kernel.events_filtered[0])
        stats.late_events = int(kernel.late_events[0])
        stats.transitions_emitted = int(kernel.transitions_emitted[0])
        stats.transitions_degraded = int(kernel.transitions_degraded[0])
        stats.transitions_fully_degraded = int(
            kernel.transitions_fully_degraded[0]
        )
        if kernel.toggles_dirty:
            kernel.toggles_dirty = False
            stats.net_toggles = kernel.lane_toggles(0)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def value(self, net_name: str) -> int:
        """Committed logic value of a net at the current time."""
        self._require_ready()
        net = self.netlist.net(net_name)
        return self._kernel.lane_value(0, net.index, net_name)
