"""Default library integrity."""

import pytest

from repro.circuit.cells import CellSpec, PinSpec, TimingArcSpec
from repro.circuit.library import CellLibrary, DEFAULT_VDD, default_library
from repro.circuit.logic import GateFunction, evaluate, truth_table
from repro.errors import LibraryError, UnknownCellError

EXPECTED_CELLS = {
    "INV", "INV_LT", "INV_HT", "INV_X2",
    "NAND2", "NAND2_X2", "NAND3", "NAND4",
    "NOR2", "NOR3",
    "BUF", "AND2", "AND3", "OR2", "OR3",
    "XOR2", "XNOR2", "MUX2", "AOI21", "OAI21", "MAJ3",
}


def test_default_library_contents(library):
    assert set(library.names()) == EXPECTED_CELLS
    assert library.vdd == DEFAULT_VDD


def test_every_cell_validates(library):
    for cell in library:
        cell.validate(library.vdd)


def test_every_arc_is_complete(library):
    for cell in library:
        for pin in range(cell.num_inputs):
            for rising in (False, True):
                arc = cell.arc(pin, rising)
                assert arc.d0 > 0
                assert arc.s0 > 0


def test_thresholds_inside_supply(library):
    for cell in library:
        for pin in cell.pins:
            assert 0.0 < pin.vt < library.vdd


def test_threshold_variants(library):
    inv = library.get("INV")
    low = library.get("INV_LT")
    high = library.get("INV_HT")
    assert low.pins[0].vt < inv.pins[0].vt < high.pins[0].vt
    assert low.arcs == inv.arcs
    assert high.arcs == inv.arcs


def test_drive_variants_faster_but_heavier(library):
    inv = library.get("INV")
    strong = library.get("INV_X2")
    assert strong.arcs[(0, True)].d0 < inv.arcs[(0, True)].d0
    assert strong.pins[0].cap > inv.pins[0].cap


def test_nand_pin_position_dependence(library):
    """Higher-index pins (deeper in the stack) are slower — the position
    dependence of the paper's eqs. 2/3 subscripts."""
    for name in ("NAND2", "NAND3", "NAND4"):
        cell = library.get(name)
        delays = [cell.arc(pin, True).d0 for pin in range(cell.num_inputs)]
        assert delays == sorted(delays)
        assert delays[0] < delays[-1]


def test_degradation_parameters_present_on_primitives(library):
    for name in ("INV", "NAND2", "NAND3", "NOR2"):
        cell = library.get(name)
        for pin in range(cell.num_inputs):
            for rising in (False, True):
                deg = cell.arc(pin, rising).degradation
                assert deg.a > 0
                assert deg.b > 0
                assert deg.c > 0


def test_cell_functions_match_names(library):
    assert library.get("NAND3").function is GateFunction.NAND
    assert library.get("NAND3").num_inputs == 3
    assert library.get("MUX2").function is GateFunction.MUX2
    assert truth_table(library.get("XOR2").function, 2) == [0, 1, 1, 0]


def test_cell_for_resolves_by_function(library):
    assert library.cell_for(GateFunction.NAND, 2).name == "NAND2"
    assert library.cell_for(GateFunction.INV, 1).name == "INV"
    with pytest.raises(UnknownCellError):
        library.cell_for(GateFunction.NAND, 9)


def test_unknown_cell_raises(library):
    with pytest.raises(UnknownCellError):
        library.get("NAND17")
    assert "NAND2" in library
    assert "NAND17" not in library


def test_default_library_is_shared_instance():
    assert default_library() is default_library()


def test_custom_library_rejects_duplicates(library):
    custom = CellLibrary("custom", vdd=5.0)
    custom.add(library.get("INV"))
    with pytest.raises(LibraryError):
        custom.add(library.get("INV"))


def test_custom_library_rejects_bad_vdd():
    with pytest.raises(LibraryError):
        CellLibrary("bad", vdd=0.0)


def test_add_validates_cell():
    custom = CellLibrary("custom", vdd=5.0)
    bad = CellSpec(
        name="BAD",
        function=GateFunction.INV,
        pins=(PinSpec("A", cap=1.0, vt=7.0),),  # vt above VDD
        arcs={
            (0, True): TimingArcSpec(0.1, 0.0, 0.0, 0.1, 0.0, 0.0),
            (0, False): TimingArcSpec(0.1, 0.0, 0.0, 0.1, 0.0, 0.0),
        },
    )
    with pytest.raises(LibraryError):
        custom.add(bad)


def test_macro_cells_slower_than_primitives(library):
    """AND2 = NAND2 + INV must be slower than bare NAND2."""
    assert (
        library.get("AND2").arc(0, True).d0
        > library.get("NAND2").arc(0, True).d0
    )
    assert (
        library.get("XOR2").arc(0, True).d0
        > library.get("NAND2").arc(0, True).d0
    )


def test_library_len_and_iteration(library):
    assert len(library) == len(EXPECTED_CELLS)
    assert sorted(c.name for c in library) == sorted(EXPECTED_CELLS)
