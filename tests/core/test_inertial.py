"""Per-input inertial policies (event-order and peak-voltage)."""

import pytest

from repro.config import InertialPolicy
from repro.core.events import Event
from repro.core.inertial import decide
from repro.core.transition import Transition

RESOLUTION = 1e-6


def _previous(time, rising, duration=0.4):
    """A pending event produced by a transition whose crossing is `time`."""
    # Reconstruct a plausible transition: put t50 so mid-crossing ~ time.
    transition = Transition(t50=time, duration=duration, rising=rising)
    return Event(time=time, seq=1, gate_input=None, transition=transition,
                 value=1 if rising else 0)


def test_event_order_inserts_later_event():
    previous = _previous(1.0, rising=True)
    trailing = Transition(t50=2.0, duration=0.4, rising=False)
    decision = decide(
        InertialPolicy.EVENT_ORDER, 1.5, previous, trailing, 0.5, RESOLUTION
    )
    assert not decision.annihilate
    assert decision.event_time == 1.5


def test_event_order_annihilates_non_later_event():
    previous = _previous(1.0, rising=True)
    trailing = Transition(t50=0.9, duration=0.4, rising=False)
    for new_time in (0.5, 1.0, 1.0 + 0.5 * RESOLUTION):
        decision = decide(
            InertialPolicy.EVENT_ORDER, new_time, previous, trailing,
            0.5, RESOLUTION,
        )
        assert decision.annihilate


def test_peak_policy_annihilates_runt_below_threshold():
    # Leading rise starts at 0.8 (t50 1.0, dur 0.4); trailing fall starts
    # at 0.9 -> peak progress 0.25.
    previous = _previous(1.0, rising=True)
    trailing = Transition(t50=1.1, duration=0.4, rising=False)
    assert previous.transition.pulse_peak_fraction(trailing) == pytest.approx(0.25)
    # Threshold 0.5 of swing: peak 0.25 never crosses -> annihilate.
    decision = decide(
        InertialPolicy.PEAK_VOLTAGE, trailing.crossing_time(0.5), previous,
        trailing, 0.5, RESOLUTION,
    )
    assert decision.annihilate
    # Threshold 0.2: the runt does cross -> survives.
    decision = decide(
        InertialPolicy.PEAK_VOLTAGE, trailing.crossing_time(0.2), previous,
        trailing, 0.2, RESOLUTION,
    )
    assert not decision.annihilate


def test_peak_policy_corrects_trailing_crossing():
    """A surviving partial pulse's second crossing comes earlier than the
    full-swing extrapolation by (1 - peak) * duration."""
    previous = _previous(1.0, rising=True)
    trailing = Transition(t50=1.3, duration=0.4, rising=False)
    peak = previous.transition.pulse_peak_fraction(trailing)
    assert peak == pytest.approx(0.75)
    nominal = trailing.crossing_time(0.2)
    decision = decide(
        InertialPolicy.PEAK_VOLTAGE, nominal, previous, trailing,
        0.2, RESOLUTION,
    )
    assert not decision.annihilate
    assert decision.event_time == pytest.approx(nominal - 0.25 * 0.4)


def test_peak_policy_correction_never_precedes_previous():
    previous = _previous(1.0, rising=True)
    trailing = Transition(t50=1.02, duration=2.0, rising=False)
    peak = previous.transition.pulse_peak_fraction(trailing)
    decision = decide(
        InertialPolicy.PEAK_VOLTAGE, trailing.crossing_time(0.05), previous,
        trailing, 0.05, RESOLUTION,
    )
    if not decision.annihilate:
        assert decision.event_time >= previous.time
    else:
        assert peak <= 0.05 + 1e-12


def test_peak_policy_falling_lead():
    """A falling lead (dip) crosses threshold f iff trough < f, i.e.
    progress > 1 - f."""
    previous = _previous(1.0, rising=False)
    # Trailing rise starting when the dip has progressed 40%.
    trailing = Transition(
        t50=previous.transition.start + 0.4 * 0.4 + 0.2, duration=0.4,
        rising=True,
    )
    progress = previous.transition.pulse_peak_fraction(trailing)
    assert progress == pytest.approx(0.4, abs=1e-9)
    # Threshold at 0.7 of VDD: dip to 0.6 crosses it -> survive.
    decision = decide(
        InertialPolicy.PEAK_VOLTAGE, trailing.crossing_time(0.7), previous,
        trailing, 0.7, RESOLUTION,
    )
    assert not decision.annihilate
    # Threshold at 0.3: dip bottoms at 0.6 > 0.3 -> never crossed.
    decision = decide(
        InertialPolicy.PEAK_VOLTAGE, trailing.crossing_time(0.3), previous,
        trailing, 0.3, RESOLUTION,
    )
    assert decision.annihilate


def test_peak_policy_same_direction_falls_back_to_order():
    previous = _previous(1.0, rising=True)
    same_direction = Transition(t50=2.0, duration=0.4, rising=True)
    keep = decide(
        InertialPolicy.PEAK_VOLTAGE, 1.5, previous, same_direction,
        0.5, RESOLUTION,
    )
    assert not keep.annihilate
    drop = decide(
        InertialPolicy.PEAK_VOLTAGE, 0.5, previous, same_direction,
        0.5, RESOLUTION,
    )
    assert drop.annihilate


def test_unknown_policy_rejected():
    previous = _previous(1.0, rising=True)
    trailing = Transition(t50=2.0, duration=0.4, rising=False)
    with pytest.raises(ValueError):
        decide("bogus", 1.5, previous, trailing, 0.5, RESOLUTION)
