"""The HALOTIS kernel: propagation, filtering, bookkeeping, errors."""

import contextlib
import dataclasses

import pytest

from repro.circuit import modules
from repro.circuit.builder import CircuitBuilder
from repro.config import (
    InertialPolicy,
    SimulationConfig,
    cdm_config,
    ddm_config,
)
from repro.core.engine import HalotisSimulator, simulate
from repro.errors import (
    SimulationError,
    SimulationLimitError,
    StimulusError,
)
from repro.stimuli.patterns import pulse
from repro.stimuli.vectors import VectorSequence


def _single_inverter():
    builder = CircuitBuilder(name="one_inv")
    a = builder.input("a")
    builder.output(builder.gate("INV", a, name="g"), "y")
    return builder.build()


def test_requires_initialize():
    simulator = HalotisSimulator(_single_inverter())
    assert not simulator.initialized
    with pytest.raises(SimulationError):
        simulator.run()
    with pytest.raises(SimulationError):
        simulator.set_input("a", 1, 0.0)


def test_single_edge_delay_matches_arc(library):
    """One input edge: output t50 = event time + tp0 (no degradation on
    the first transition)."""
    netlist = _single_inverter()
    simulator = HalotisSimulator(netlist, config=ddm_config())
    simulator.initialize({"a": 0})
    slew = 0.2
    transition = simulator.set_input("a", 1, at_time=1.0, slew=slew)
    assert transition is not None
    simulator.run()

    inv = library.get("INV")
    gate_input = netlist.gate("g").inputs[0]
    vt_fraction = gate_input.vt / netlist.vdd
    event_time = transition.crossing_time(vt_fraction)
    load = netlist.net("y").load()
    expected_tp0 = inv.arc(0, rising=False).delay(load, slew)

    edges = simulator.traces["y"].edges()
    assert len(edges) == 1
    assert edges[0][1] == 0
    assert edges[0][0] == pytest.approx(event_time + expected_tp0)
    assert simulator.value("y") == 0
    assert simulator.stats.events_executed == 1
    assert simulator.stats.transitions_emitted == 1


def test_unchanged_input_is_noop():
    simulator = HalotisSimulator(_single_inverter())
    simulator.initialize({"a": 1})
    assert simulator.set_input("a", 1, at_time=1.0) is None
    assert simulator.stats.source_transitions == 0


def test_stimulus_errors():
    simulator = HalotisSimulator(_single_inverter())
    simulator.initialize({"a": 0})
    with pytest.raises(StimulusError):
        simulator.set_input("y", 1, 1.0)  # not a PI
    with pytest.raises(StimulusError):
        simulator.set_input("a", 2, 1.0)
    with pytest.raises(StimulusError):
        simulator.set_input("a", 1, 1.0, slew=0.0)
    simulator.run(until=5.0)
    with pytest.raises(StimulusError):
        simulator.set_input("a", 1, 1.0)  # in the past


def test_chain_propagation_and_polarity():
    netlist = modules.inverter_chain(4)
    simulator = HalotisSimulator(netlist, config=ddm_config())
    simulator.initialize({"in": 0})
    simulator.set_input("in", 1, at_time=1.0)
    simulator.run()
    assert simulator.value("out1") == 0
    assert simulator.value("out2") == 1
    assert simulator.value("out3") == 0
    assert simulator.value("out4") == 1
    # Delays accumulate monotonically along the chain.
    times = [simulator.traces["out%d" % k].edges()[0][0] for k in (1, 2, 3, 4)]
    assert times == sorted(times)


def test_wide_pulse_propagates_narrow_pulse_filters():
    netlist = modules.inverter_chain(6)
    config = ddm_config(record_filtered=True)

    wide = simulate(netlist, pulse("in", start=1.0, width=2.0), config=config)
    assert wide.traces["out6"].toggle_count() == 2
    assert wide.stats.events_filtered == 0

    narrow = simulate(netlist, pulse("in", start=1.0, width=0.05), config=config)
    assert narrow.traces["out6"].toggle_count() == 0
    assert narrow.stats.events_filtered >= 1
    assert narrow.simulator.filtered_log  # record_filtered keeps details


def test_degradation_shrinks_pulse_along_chain():
    """A mid-width pulse narrows stage by stage under DDM but keeps its
    width under CDM."""
    netlist = modules.inverter_chain(6)
    stimulus = pulse("in", start=1.0, width=0.28)

    ddm = simulate(netlist, stimulus, config=ddm_config())
    cdm = simulate(netlist, stimulus, config=cdm_config())

    cdm_widths = [
        cdm.traces["out%d" % k].pulse_widths() for k in range(1, 7)
    ]
    assert all(len(w) == 1 for w in cdm_widths)
    spread = max(w[0] for w in cdm_widths) - min(w[0] for w in cdm_widths)
    assert spread < 0.15  # CDM roughly preserves width

    ddm_widths = []
    for k in range(1, 7):
        widths = ddm.traces["out%d" % k].pulse_widths()
        if not widths:
            break
        ddm_widths.append(widths[0])
    # DDM: strictly shrinking until the pulse dies.
    assert len(ddm_widths) < 6 or ddm_widths[-1] < ddm_widths[0]
    assert all(b < a + 1e-9 for a, b in zip(ddm_widths, ddm_widths[1:]))


def test_filtered_events_counted_per_input():
    """A runt annihilated at several fanout pins counts once per pin."""
    builder = CircuitBuilder(name="fan2")
    a = builder.input("a")
    mid = builder.gate("INV", a, name="drv")
    builder.output(builder.gate("INV", mid, name="r1"), "y1")
    builder.output(builder.gate("INV_LT", mid, name="r2"), "y2")
    netlist = builder.build()
    result = simulate(
        netlist, pulse("a", start=1.0, width=0.04), config=ddm_config()
    )
    # The dip on `mid` dies at both receivers: the plain INV because the
    # pulse is far too narrow, the low-threshold INV because the shallow
    # dip never reaches VT1.
    assert result.stats.events_filtered >= 2
    assert result.traces["y1"].toggle_count() == 0
    assert result.traces["y2"].toggle_count() == 0


def test_threshold_selectivity_on_shared_net():
    """The same runt dip propagates into a high-threshold receiver while
    being filtered at the mid-threshold one — the paper's core point."""
    builder = CircuitBuilder(name="fanht")
    a = builder.input("a")
    mid = builder.gate("INV", a, name="drv")
    builder.output(builder.gate("INV", mid, name="r1"), "y1")
    builder.output(builder.gate("INV_HT", mid, name="r2"), "y2")
    netlist = builder.build()
    result = simulate(
        netlist, pulse("a", start=1.0, width=0.10), config=ddm_config()
    )
    assert result.traces["y1"].toggle_count() == 0
    assert result.traces["y2"].toggle_count() == 2


def test_determinism(mult4):
    from repro.stimuli.vectors import multiplication_sequence, PAPER_SEQUENCE_1

    stimulus = multiplication_sequence(PAPER_SEQUENCE_1)
    first = simulate(mult4, stimulus, config=ddm_config())
    second = simulate(mult4, stimulus, config=ddm_config())
    assert first.stats.events_executed == second.stats.events_executed
    assert first.stats.events_filtered == second.stats.events_filtered
    for name in ("s0", "s3", "s7"):
        assert first.traces[name].edges() == second.traces[name].edges()


def test_queue_kinds_agree(mult4):
    from repro.stimuli.vectors import multiplication_sequence, PAPER_SEQUENCE_1

    stimulus = multiplication_sequence(PAPER_SEQUENCE_1)
    heap = simulate(mult4, stimulus, config=ddm_config(), queue_kind="heap")
    listq = simulate(
        mult4, stimulus, config=ddm_config(), queue_kind="sorted-list"
    )
    assert heap.stats.events_executed == listq.stats.events_executed
    for name in ("s0", "s5", "s7"):
        assert heap.traces[name].edges() == listq.traces[name].edges()


def test_peak_policy_runs_and_differs_little(mult4):
    from repro.stimuli.vectors import multiplication_sequence, PAPER_SEQUENCE_2

    stimulus = multiplication_sequence(PAPER_SEQUENCE_2)
    order = simulate(mult4, stimulus, config=ddm_config())
    peak = simulate(
        mult4, stimulus,
        config=ddm_config(inertial_policy=InertialPolicy.PEAK_VOLTAGE),
    )
    # Same settled answers...
    assert order.final_values == peak.final_values
    # ...comparable event counts (the policies differ only on borderline
    # runts).
    ratio = peak.stats.events_executed / order.stats.events_executed
    assert 0.7 < ratio < 1.3


def test_max_events_limit():
    netlist = modules.ring_oscillator(3)
    config = ddm_config(max_events=200)
    simulator = HalotisSimulator(netlist, config=config)
    simulator.initialize({"en": 0})
    simulator.set_input("en", 1, at_time=1.0)
    with pytest.raises(SimulationLimitError):
        simulator.run()


def test_ring_oscillator_stable_under_cdm():
    """Without degradation the ring oscillates with a constant period set
    by the loop delay."""
    netlist = modules.ring_oscillator(5)
    simulator = HalotisSimulator(netlist, config=cdm_config())
    simulator.initialize({"en": 0})
    simulator.set_input("en", 1, at_time=1.0)
    simulator.run(until=20.0)
    edges = simulator.traces["osc"].edges()
    assert len(edges) > 6
    times = [t for t, _v in edges]
    periods = [b - a for a, b in zip(times[:-2:2], times[2::2])]
    mean = sum(periods) / len(periods)
    assert all(abs(p - mean) / mean < 0.05 for p in periods[1:])


def test_ring_oscillator_ddm_collapse_artifact():
    """Known limitation (documented in DESIGN.md): raw eq. 1 in a tight
    feedback loop is self-reinforcing — each shortened delay shortens the
    next T — so a DDM ring degenerates towards the minimum delay instead
    of settling at the physical period.  The kernel must survive this
    (bounded by max_events) and keep oscillating."""
    netlist = modules.ring_oscillator(5)
    config = ddm_config(max_events=20_000)
    simulator = HalotisSimulator(netlist, config=config)
    simulator.initialize({"en": 0})
    simulator.set_input("en", 1, at_time=1.0)
    with contextlib.suppress(SimulationLimitError):
        simulator.run(until=20.0)
    edges = simulator.traces["osc"].edges()
    assert len(edges) > 6
    times = [t for t, _v in edges]
    periods = [b - a for a, b in zip(times[:-2:2], times[2::2])]
    # The period shrinks (collapse) rather than stabilising.
    assert periods[-1] < periods[0]


def test_rs_latch_set_then_hold():
    latch = modules.rs_latch()
    simulator = HalotisSimulator(latch, config=ddm_config())
    simulator.initialize({"s_n": 1, "r_n": 1}, seed={"q": 0, "qn": 1})
    assert simulator.value("q") == 0
    simulator.set_input("s_n", 0, at_time=1.0)
    simulator.run(until=3.0)
    simulator.set_input("s_n", 1, at_time=3.0)
    simulator.run(until=6.0)
    assert simulator.value("q") == 1
    assert simulator.value("qn") == 0


def test_run_until_is_resumable():
    netlist = modules.inverter_chain(4)
    simulator = HalotisSimulator(netlist, config=ddm_config())
    simulator.initialize({"in": 0})
    simulator.set_input("in", 1, at_time=1.0)
    simulator.run(until=1.05)
    partial = simulator.stats.events_executed
    assert partial < 5
    simulator.run()
    assert simulator.stats.events_executed >= partial
    assert simulator.value("out4") == 1


def test_step_executes_single_event():
    netlist = modules.inverter_chain(2)
    simulator = HalotisSimulator(netlist, config=ddm_config())
    simulator.initialize({"in": 0})
    simulator.set_input("in", 1, at_time=1.0)
    first = simulator.step()
    assert first is not None
    assert simulator.stats.events_executed == 1
    while simulator.step() is not None:
        pass
    assert simulator.value("out2") == 1


def test_word_and_values(mult4):
    simulator = HalotisSimulator(mult4, config=ddm_config())
    init = {"a%d" % k: 1 for k in range(4)}
    init.update({"b%d" % k: 1 for k in range(4)})
    simulator.initialize(init)
    assert simulator.word("s", 8) == 225
    values = simulator.values()
    assert values["tie0"] == 0
    assert values["s0"] == 1


def test_record_traces_off_keeps_stats(mult4):
    from repro.stimuli.vectors import multiplication_sequence, PAPER_SEQUENCE_1

    config = dataclasses.replace(ddm_config(), record_traces=False)
    result = simulate(mult4, multiplication_sequence(PAPER_SEQUENCE_1),
                      config=config)
    assert len(result.traces) == 0
    assert result.stats.events_executed > 0
    assert result.stats.total_toggles > 0
    assert result.final_values["s0"] == 1  # 15*15 = 225 -> bit0 set


def test_simulate_runs_every_change(mult4):
    stimulus = VectorSequence(
        [
            (0.0, {"a0": 0, "a1": 0, "a2": 0, "a3": 0,
                   "b0": 0, "b1": 0, "b2": 0, "b3": 0}),
            (5.0, {"a0": 1, "b0": 1}),
            (10.0, {"a1": 1, "b1": 1}),
        ],
        tail=5.0,
    )
    result = simulate(mult4, stimulus, config=ddm_config())
    assert result.traces.word_at(9.9, "s", 8) == 1
    assert result.traces.word_at(15.0, "s", 8) == 9
