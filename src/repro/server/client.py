"""Blocking client for the network simulation server.

:class:`SimulationClient` wraps one TCP connection to a
:class:`~repro.server.app.SimulationServer` and exposes the wire ops as
methods.  Decoded ``simulate``/``simulate_batch`` results are full
:class:`~repro.core.engine.SimulationResult` objects, **bit-identical**
to a local ``simulate()`` of the same vector (the lossless codec in
:mod:`repro.io_formats.jsonl_protocol` carries every transition field).

The client tags every request with a monotonically increasing ``id`` and
matches responses by it, so it also supports *pipelining*: the
``submit_*`` methods send without waiting, and :meth:`result` collects a
specific response later — responses arriving for other pending requests
are parked until asked for.  Error frames raise
:class:`~repro.errors.ServerError` with the wire ``kind`` preserved
(``"busy"`` is the backpressure signal worth retrying).

Typical use::

    with SimulationClient("127.0.0.1", 8047) as client:
        client.register("c17", {"kind": "builtin", "name": "c17"})
        result = client.simulate("c17", stimulus)   # a SimulationResult
"""

from __future__ import annotations

import contextlib
import itertools
import json
import socket
import time
from typing import Dict, List, Mapping, Optional, Sequence

from ..config import SimulationConfig
from ..core.engine import SimulationResult
from ..errors import ReproError, ServerError
from ..io_formats import jsonl_protocol
from ..stimuli.vectors import VectorSequence


def parse_address(
    text: str, default_port: Optional[int] = None
) -> tuple[str, int]:
    """Split ``HOST:PORT`` (or bare ``HOST`` with a default port).

    The CLI's ``--connect`` argument format.  IPv6 literals follow the
    URL convention — bracket them to attach a port (``[::1]:8047``); a
    bare multi-colon host (``::1``) is taken whole, with the default
    port.  Raises :class:`ServerError` (kind ``connection``) on
    malformed input.
    """
    if text.startswith("["):
        host, bracket, rest = text[1:].partition("]")
        if not bracket or (rest and not rest.startswith(":")):
            raise ServerError(
                "malformed address %r (expected [V6HOST]:PORT)" % text,
                kind="connection",
            )
        port_text = rest[1:]
    elif text.count(":") > 1:
        # An unbracketed IPv6 literal: every colon belongs to the host.
        host, port_text = text, ""
    else:
        host, separator, port_text = text.rpartition(":")
        if not separator:
            host, port_text = text, ""
    if not port_text:
        if default_port is None:
            raise ServerError(
                "address %r needs a port (HOST:PORT)" % text,
                kind="connection",
            )
        return (host or "127.0.0.1", default_port)
    try:
        port = int(port_text)
    except ValueError:
        raise ServerError(
            "malformed address %r (expected HOST:PORT)" % text,
            kind="connection",
        ) from None
    if not 0 < port <= 65535:
        raise ServerError(
            "port %d out of range in %r" % (port, text), kind="connection"
        )
    return (host or "127.0.0.1", port)


def wait_for_server(
    host: str, port: int, timeout: float = 10.0
) -> SimulationClient:
    """Poll until a server answers ``ping``; returns a connected client.

    Raises :class:`ServerError` (kind ``connection``) when the deadline
    passes without a successful ping — the readiness gate for scripts
    that just launched ``repro serve`` in the background.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            # Bounded ping probe; the returned client reverts to
            # unbounded response waits (long batches are legitimate).
            client = SimulationClient(
                host, port, timeout=max(timeout, 1.0),
                connect_timeout=max(timeout, 1.0),
            )
            client.ping()
            client.set_response_timeout(None)
            return client
        except (OSError, ReproError) as error:
            last_error = error
            time.sleep(0.05)
    raise ServerError(
        "no simulation server answering on %s:%d after %.1fs (%s)"
        % (host, port, timeout, last_error),
        kind="connection",
    )


class SimulationClient:
    """One blocking connection to a simulation server."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = None,
        connect_timeout: float = 10.0,
        config: Optional[SimulationConfig] = None,
    ):
        """``timeout`` bounds each *response* wait (None, the default,
        waits indefinitely — a big batch frame legitimately answers only
        after the whole batch simulated); ``connect_timeout`` bounds the
        TCP connect alone."""
        defaults = config if config is not None else SimulationConfig()
        self.host = host if host is not None else defaults.server_host
        self.port = port if port is not None else defaults.server_port
        self.timeout = timeout
        self._ids = itertools.count(1)
        #: responses that arrived while waiting for a different id.
        self._parked: Dict[int, dict] = {}
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=connect_timeout
            )
        except OSError as error:
            raise ServerError(
                "cannot connect to %s:%s: %s" % (self.host, self.port, error),
                kind="connection",
            ) from None
        # Request frames are small; without TCP_NODELAY a pipelined
        # second frame can sit out a full delayed-ACK interval (~40 ms)
        # behind the first — Nagle buys nothing on this protocol.
        with contextlib.suppress(OSError):  # e.g. AF_UNIX some day
            self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock.settimeout(timeout)
        self._file = self._sock.makefile("rwb")
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> SimulationClient:
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def set_response_timeout(self, timeout: Optional[float]) -> None:
        """Re-bound (or unbound, with None) every later response wait."""
        self.timeout = timeout
        self._sock.settimeout(timeout)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for resource in (self._file, self._sock):
            with contextlib.suppress(OSError):
                resource.close()  # pragma: no cover - peer already gone

    # -- the wire ------------------------------------------------------

    def _broken(self, message: str, kind: str = "connection") -> ServerError:
        """Mark this connection unusable and build the error to raise.

        A timeout or a torn frame leaves the buffered reader desynced —
        a later read could hand back the *tail* of a truncated frame and
        park responses under the wrong ids.  Dead, not degraded.
        """
        self.close()
        return ServerError(message, kind=kind)

    def _send(self, op: str, **fields: object) -> int:
        """Write one request frame; returns its id (pipelining-safe)."""
        if self._closed:
            raise ServerError("client is closed", kind="connection")
        request_id = next(self._ids)
        frame: Dict[str, object] = {"id": request_id, "op": op}
        frame.update(fields)
        try:
            self._file.write(json.dumps(frame).encode() + b"\n")
            self._file.flush()
        except OSError as error:
            raise self._broken(
                "connection to %s:%s lost while sending: %s"
                % (self.host, self.port, error)
            ) from None
        return request_id

    def _read_frame(self) -> dict:
        if self._closed:
            raise ServerError("client is closed", kind="connection")
        try:
            raw = self._file.readline()
        except OSError as error:
            raise self._broken(
                "connection to %s:%s lost: %s" % (self.host, self.port, error)
            ) from None
        if not raw:
            raise self._broken(
                "server %s:%s closed the connection" % (self.host, self.port)
            )
        try:
            frame = json.loads(raw)
        except json.JSONDecodeError as error:
            raise self._broken(
                "undecodable response frame: %s" % error, kind="protocol"
            ) from None
        if not isinstance(frame, dict):
            raise self._broken(
                "response frame is not an object", kind="protocol"
            )
        return frame

    def result(self, request_id: int) -> object:
        """Block until the response for ``request_id`` arrives.

        Responses for *other* pending requests seen meanwhile are parked
        (completion order on the wire is not submission order).  Error
        frames raise :class:`ServerError` carrying the wire ``kind``.
        """
        while request_id not in self._parked:
            frame = self._read_frame()
            key = frame.get("id")
            if isinstance(key, int):
                self._parked[key] = frame
            # Frames with non-integer ids cannot belong to this client's
            # sequence; drop them rather than park unreachable entries.
        frame = self._parked.pop(request_id)
        if frame.get("ok"):
            return frame.get("result")
        error = frame.get("error") or {}
        raise ServerError(
            str(error.get("message", "server reported an error")),
            kind=str(error.get("kind", "error")),
        )

    def call(self, op: str, **fields: object) -> object:
        """Send one request and wait for its response."""
        return self.result(self._send(op, **fields))

    # -- ops -----------------------------------------------------------

    def ping(self) -> dict:
        return self.call("ping")  # type: ignore[return-value]

    def register(
        self,
        name: str,
        source: Mapping[str, object],
        mode: str = "ddm",
        engine_kind: str = "compiled",
        workers: Optional[int] = None,
        shm_transport: Optional[bool] = None,
        record_traces: bool = True,
    ) -> dict:
        fields: Dict[str, object] = {
            "name": name,
            "source": dict(source),
            "mode": mode,
            "engine": engine_kind,
            "record_traces": record_traces,
        }
        if workers is not None:
            fields["workers"] = workers
        if shm_transport is not None:
            fields["shm"] = shm_transport
        return self.call("register", **fields)  # type: ignore[return-value]

    def unregister(self, name: str) -> dict:
        return self.call("unregister", name=name)  # type: ignore[return-value]

    def sta(self, name: str, k_paths: int = 4) -> dict:
        """Static timing + hazard analysis of registered netlist ``name``.

        Returns ``{"netlist", "sta", "hazards"}`` — the server-side
        :class:`repro.analysis.sta.StaReport` and
        :class:`repro.analysis.hazards.HazardReport` dicts, computed
        under the entry's registered config without running a single
        vector.
        """
        return self.call("sta", netlist=name, k=k_paths)  # type: ignore[return-value]

    def faults(
        self,
        name: str,
        faultload: dict,
        stimulus: VectorSequence,
        epsilon: float = 0.0,
    ) -> dict:
        """Run a fault-injection campaign server-side.

        ``faultload`` is a :class:`repro.faults.faultload.Faultload`
        dict (``Faultload.to_dict()``); the server plays golden +
        mutants on the entry's warm pool and returns the
        :class:`repro.faults.campaign.DependabilityReport` dict —
        classification happens server-side, only the report crosses
        the wire.
        """
        payload = self.call(
            "faults",
            netlist=name,
            faultload=faultload,
            vector=jsonl_protocol.encode_vector(stimulus),
            epsilon=epsilon,
        )
        return payload["report"]  # type: ignore[index]

    def list_netlists(self) -> List[dict]:
        payload = self.call("list")
        return payload["netlists"]  # type: ignore[index]

    def stats(self) -> dict:
        return self.call("stats")  # type: ignore[return-value]

    def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format.

        Empty when the server runs with ``collect_metrics`` off.
        """
        payload = self.call("metrics")
        return payload["text"]  # type: ignore[index]

    def shutdown(self) -> dict:
        """Ask the server to stop (it finishes in-flight work first)."""
        return self.call("shutdown")  # type: ignore[return-value]

    # -- simulation ----------------------------------------------------

    def submit_simulate(
        self, netlist: str, stimulus: VectorSequence, full: bool = True
    ) -> int:
        """Pipeline one vector; collect with :meth:`simulate_result`."""
        return self._send(
            "simulate",
            netlist=netlist,
            vector=jsonl_protocol.encode_vector(stimulus),
            full=full,
        )

    def simulate_result(self, request_id: int) -> SimulationResult:
        payload = self.result(request_id)
        return jsonl_protocol.result_from_dict(
            payload["result"]  # type: ignore[index]
        )

    def simulate(
        self, netlist: str, stimulus: VectorSequence
    ) -> SimulationResult:
        """Simulate one vector remotely; bit-identical to local."""
        return self.simulate_result(self.submit_simulate(netlist, stimulus))

    def simulate_summary(
        self, netlist: str, stimulus: VectorSequence
    ) -> dict:
        """The compact (lossy) per-vector summary — cheap on the wire."""
        payload = self.result(
            self.submit_simulate(netlist, stimulus, full=False)
        )
        return payload["result"]  # type: ignore[index]

    def simulate_batch(
        self, netlist: str, stimuli: Sequence[VectorSequence]
    ) -> List[SimulationResult]:
        """Simulate N vectors in one frame; results in input order."""
        payload = self.call(
            "batch",
            netlist=netlist,
            vectors=[jsonl_protocol.encode_vector(s) for s in stimuli],
        )
        return [
            jsonl_protocol.result_from_dict(entry)
            for entry in payload["results"]  # type: ignore[index]
        ]
