"""Waveform traces recorded during simulation.

A :class:`NetTrace` keeps every transition emitted on one net, in emission
order.  Because degraded transitions can be scheduled *before* the net's
previous transition (the mechanism behind input-side pulse annihilation),
the raw list is not necessarily monotone in time; :meth:`NetTrace.edges`
derives the clean digital waveform by cancelling reversed pairs — exactly
mirroring what the inertial rule does at every fanout input.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import AnalysisError
from .transition import Transition

#: A digital edge: (time, new_value).
Edge = Tuple[float, int]


class NetTrace:
    """All transitions of one net during one run."""

    def __init__(self, net_name: str, initial_value: int):
        if initial_value not in (0, 1):
            raise ValueError("initial value must be 0 or 1")
        self.net_name = net_name
        self.initial_value = initial_value
        self.transitions: List[Transition] = []

    def append(self, transition: Transition) -> None:
        self.transitions.append(transition)

    # ------------------------------------------------------------------
    # digital views
    # ------------------------------------------------------------------

    def edges(self) -> List[Edge]:
        """Clean digital edge list (time, new value), strictly increasing.

        Walks the transitions in emission order keeping a stack of
        surviving edges; a transition whose mid-swing time does not come
        after the previous survivor annihilates it (zero-width pulse), the
        same pairing rule the kernel applies per input.
        """
        survivors: List[Transition] = []
        for transition in self.transitions:
            if survivors and transition.t50 <= survivors[-1].t50:
                survivors.pop()
                continue
            survivors.append(transition)
        return [(t.t50, t.final_value) for t in survivors]

    def value_at(self, time: float) -> int:
        """Digital value at ``time`` (edges at exactly ``time`` count)."""
        value = self.initial_value
        for edge_time, edge_value in self.edges():
            if edge_time > time:
                break
            value = edge_value
        return value

    def toggle_count(self) -> int:
        """Number of surviving digital edges (switching activity)."""
        return len(self.edges())

    def raw_count(self) -> int:
        """Number of emitted transitions including annihilated runts."""
        return len(self.transitions)

    def pulse_widths(self) -> List[float]:
        """Widths of every complete pulse in the clean digital waveform."""
        edge_list = self.edges()
        widths = []
        for first, second in zip(edge_list, edge_list[1:]):
            widths.append(second[0] - first[0])
        return widths

    def sample(self, times: Sequence[float]) -> List[int]:
        """Digital value at each of ``times`` (must be sorted ascending)."""
        edge_list = self.edges()
        values = []
        value = self.initial_value
        cursor = 0
        previous_time: Optional[float] = None
        for time in times:
            if previous_time is not None and time < previous_time:
                raise AnalysisError("sample times must be sorted ascending")
            previous_time = time
            while cursor < len(edge_list) and edge_list[cursor][0] <= time:
                value = edge_list[cursor][1]
                cursor += 1
            values.append(value)
        return values

    def analog_fraction_at(self, time: float) -> float:
        """Reconstructed ramp waveform level (fraction of swing) at ``time``.

        Uses the surviving transitions' linear ramps; between transitions
        the level sits on a rail.  Intended for plotting, not for event
        generation.
        """
        survivors: List[Transition] = []
        for transition in self.transitions:
            if survivors and transition.t50 <= survivors[-1].t50:
                survivors.pop()
                continue
            survivors.append(transition)
        level = float(self.initial_value)
        for transition in survivors:
            if time <= transition.start:
                break
            level = transition.fraction_at(time)
            if time < transition.end:
                break
        return level

    def __repr__(self) -> str:
        return "NetTrace(%s: %d transitions)" % (self.net_name, len(self.transitions))


class TraceSet:
    """Traces of every recorded net in one run."""

    def __init__(self, vdd: float):
        self.vdd = vdd
        self._traces: Dict[str, NetTrace] = {}
        #: end of the simulated interval (set by the engine).
        self.horizon: float = 0.0

    def create(self, net_name: str, initial_value: int) -> NetTrace:
        if net_name in self._traces:
            raise AnalysisError("trace for net %r already exists" % net_name)
        trace = NetTrace(net_name, initial_value)
        self._traces[net_name] = trace
        return trace

    def __contains__(self, net_name: str) -> bool:
        return net_name in self._traces

    def __getitem__(self, net_name: str) -> NetTrace:
        try:
            return self._traces[net_name]
        except KeyError:
            raise AnalysisError("no trace recorded for net %r" % net_name) from None

    def __iter__(self):
        return iter(self._traces.values())

    def __len__(self) -> int:
        return len(self._traces)

    def names(self) -> List[str]:
        return list(self._traces)

    # ------------------------------------------------------------------
    # bus helpers
    # ------------------------------------------------------------------

    def word_at(self, time: float, prefix: str, width: int) -> int:
        """Integer value of bus ``prefix0..prefix{w-1}`` at ``time``."""
        word = 0
        for bit in range(width):
            word |= self["%s%d" % (prefix, bit)].value_at(time) << bit
        return word

    def bus_toggles(self, prefix: str, width: int) -> int:
        """Total surviving edge count across a bus."""
        return sum(
            self["%s%d" % (prefix, bit)].toggle_count() for bit in range(width)
        )

    def total_toggles(self, names: Optional[Iterable[str]] = None) -> int:
        """Total surviving edges over ``names`` (default: every trace)."""
        if names is None:
            return sum(trace.toggle_count() for trace in self)
        return sum(self[name].toggle_count() for name in names)
