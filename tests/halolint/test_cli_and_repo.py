"""The CLI contract, and halolint over this repository itself."""

from __future__ import annotations

import json

from conftest import REPO_ROOT, findings_for

from tools.halolint import Baseline, run
from tools.halolint.cli import DEFAULT_BASELINE, main
from tools.halolint.registry import RULES

BAD = {"src/repro/core/consumer.py": """
    def tweak(compiled):
        compiled.arc_rise[3] = 0.5
"""}


def _seed(lint_tree, files):
    """Materialise ``files`` on disk; the lint result is discarded."""
    lint_tree(files)


def test_cli_exit_codes_and_human_output(lint_tree, tmp_path, capsys):
    _seed(lint_tree, BAD)
    code = main(["--root", str(tmp_path), "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 2
    assert "HL001" in out
    assert "arc_rise" in out


def test_cli_json_report(lint_tree, tmp_path, capsys):
    _seed(lint_tree, BAD)
    code = main(["--root", str(tmp_path), "--no-baseline", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["ok"] is False
    assert payload["rules"] == sorted(RULES)
    assert payload["findings"][0]["rule"] == "HL001"
    assert payload["findings"][0]["file"] == "src/repro/core/consumer.py"


def test_cli_write_baseline_then_clean(lint_tree, tmp_path, capsys):
    _seed(lint_tree, BAD)
    baseline = tmp_path / "baseline.json"
    argv = ["--root", str(tmp_path), "--baseline", str(baseline)]
    assert main(argv + ["--write-baseline"]) == 0
    assert main(argv) == 0
    capsys.readouterr()
    # Pruning the baseline un-grandfathers the finding (CLI round trip).
    baseline.write_text(json.dumps({"version": 1, "entries": []}))
    assert main(argv) == 2


def test_cli_disable_flag(lint_tree, tmp_path):
    _seed(lint_tree, BAD)
    assert main([
        "--root", str(tmp_path), "--no-baseline", "--disable", "HL001",
    ]) == 0


def test_syntax_error_is_an_hl000_finding(lint_tree):
    result = lint_tree({"src/repro/broken.py": "def oops(:\n"})
    (finding,) = findings_for(result, "HL000")
    assert "does not parse" in finding.message
    assert result.exit_code() == 2


def test_repo_tree_is_clean_under_the_checked_in_baseline():
    """The gate CI enforces: fresh findings on this repo are a failure."""
    result = run(REPO_ROOT, baseline=Baseline.load(DEFAULT_BASELINE))
    assert result.report.findings == [], [
        str(f) for f in result.report.findings
    ]
    assert result.stale_baseline == [], (
        "baseline entries no longer match anything; prune them: %s"
        % result.stale_baseline
    )
    assert result.files_scanned > 50


def test_baseline_only_grandfathers_the_exception_long_tail():
    """The checked-in baseline must stay HL005-only: new HL001-HL004
    debt may not be silently grandfathered."""
    baseline = Baseline.load(DEFAULT_BASELINE)
    assert {entry["rule"] for entry in baseline.entries} == {"HL005"}
