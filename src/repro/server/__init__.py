"""Network simulation serving.

The server stack puts PR 3's warm :class:`~repro.core.service.SimulationService`
pools on TCP so many clients — possibly on other hosts — can share one
long-lived simulator process:

* :mod:`repro.server.registry` — named netlists, each lazily backed by
  its own warm worker pool;
* :mod:`repro.server.app` — the asyncio line-protocol server
  (``repro serve`` on the CLI);
* :mod:`repro.server.client` — the blocking client library
  (``repro simulate --connect`` on the CLI).

The wire format is newline-delimited JSON built on the same codec as the
CLI's ``--stdin-vectors`` streaming mode
(:mod:`repro.io_formats.jsonl_protocol`), and a vector simulated over
the wire returns a bit-identical result to a local ``simulate()`` —
pinned by ``tests/server/test_server.py``.
"""

from .registry import BUILTIN_CIRCUITS, NetlistRegistry, resolve_source
from .app import SimulationServer
from .client import SimulationClient, parse_address, wait_for_server

__all__ = [
    "BUILTIN_CIRCUITS",
    "NetlistRegistry",
    "resolve_source",
    "SimulationServer",
    "SimulationClient",
    "parse_address",
    "wait_for_server",
]
