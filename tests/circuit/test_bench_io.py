"""ISCAS .bench parsing and writing."""

import itertools

import pytest

from repro.circuit import bench_io, modules
from repro.circuit.evaluate import evaluate_netlist
from repro.errors import ParseError

C17_TEXT = """
# c17 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
"""


def test_parse_c17_matches_builtin(c17):
    parsed = bench_io.read_bench(C17_TEXT, name="c17")
    for bits in itertools.product((0, 1), repeat=5):
        values = dict(zip(("1", "2", "3", "6", "7"), bits))
        ours = evaluate_netlist(c17, values)
        theirs = evaluate_netlist(parsed, values)
        assert ours["22"] == theirs["22"]
        assert ours["23"] == theirs["23"]


def test_out_of_order_definitions_allowed():
    text = """
INPUT(a)
OUTPUT(y)
y = NOT(m)
m = AND(a, a)
"""
    netlist = bench_io.read_bench(text)
    assert evaluate_netlist(netlist, {"a": 1})["y"] == 0
    assert evaluate_netlist(netlist, {"a": 0})["y"] == 1


def test_wide_fanin_decomposes():
    text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n" \
           "OUTPUT(y)\ny = AND(a, b, c, d, e)\n"
    netlist = bench_io.read_bench(text)
    for bits in itertools.product((0, 1), repeat=5):
        values = dict(zip("abcde", bits))
        assert evaluate_netlist(netlist, values)["y"] == int(all(bits))


def test_wide_nand_and_xor():
    text = "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\n" \
           "OUTPUT(n)\nOUTPUT(x)\n" \
           "n = NAND(a, b, c, d, e)\nx = XOR(a, b, c, d, e)\n"
    netlist = bench_io.read_bench(text)
    for bits in itertools.product((0, 1), repeat=5):
        values = dict(zip("abcde", bits))
        result = evaluate_netlist(netlist, values)
        assert result["n"] == int(not all(bits))
        assert result["x"] == sum(bits) % 2


def test_single_input_gates_degenerate():
    text = "INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a)\nz = NOR(a)\n"
    netlist = bench_io.read_bench(text)
    assert evaluate_netlist(netlist, {"a": 1})["y"] == 1
    assert evaluate_netlist(netlist, {"a": 1})["z"] == 0


@pytest.mark.parametrize(
    "text,fragment",
    [
        ("INPUT(a)\ny = FROB(a)\n", "unknown function"),
        ("INPUT(a)\ny = DFF(a)\n", "DFF"),
        ("INPUT(a)\ngarbage line\n", "unrecognised"),
        ("INPUT(a)\nOUTPUT(y)\ny = AND(a, missing)\n", "undefined net"),
        ("INPUT(a)\nOUTPUT(z)\n", "undefined"),
        ("INPUT(a)\na = NOT(a)\n", "assigned twice|duplicate|driven"),
        ("INPUT(a)\ny = AND()\n", "no inputs"),
    ],
)
def test_parse_errors(text, fragment):
    with pytest.raises(ParseError):
        bench_io.read_bench(text)


def test_duplicate_assignment_rejected():
    text = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = AND(a, a)\n"
    with pytest.raises(ParseError):
        bench_io.read_bench(text)


def test_parse_error_reports_line_number():
    try:
        bench_io.read_bench("INPUT(a)\n\nbad line here\n")
    except ParseError as error:
        assert error.line_number == 3
    else:
        pytest.fail("expected ParseError")


def test_write_then_read_roundtrip(c17):
    text = bench_io.write_bench(c17)
    parsed = bench_io.read_bench(text, name="c17rt")
    for bits in itertools.product((0, 1), repeat=5):
        values = dict(zip(("1", "2", "3", "6", "7"), bits))
        assert (
            evaluate_netlist(parsed, values)
            == evaluate_netlist(c17, values)
        )


def test_write_rejects_unsupported_cells():
    netlist = modules.mux_tree(1)
    with pytest.raises(ParseError):
        bench_io.write_bench(netlist)


def test_write_rejects_constants(mult4):
    with pytest.raises(ParseError):
        bench_io.write_bench(mult4)  # the multiplier contains tie-0 nets


def test_read_from_file(tmp_path, c17):
    path = tmp_path / "c17.bench"
    path.write_text(C17_TEXT)
    parsed = bench_io.read_bench(path)
    assert parsed.name == "c17"
    assert len(parsed.gates) == len(c17.gates)
