"""The HALOTIS simulation kernel (paper section 3, Figure 4).

The kernel is an event-driven loop over *threshold-crossing events*:

1. pop the earliest event from the queue;
2. commit the new logic value at the event's gate input and evaluate the
   gate; if the output value changes,
3. compute the output transition with the configured delay model (DDM or
   CDM) — this is the "calculate the output transition using DDM" box of
   Figure 4;
4. for every gate input in the output net's fanout, compute the event
   ``Ej`` where the new transition crosses that input's threshold and
   apply the inertial rule against the input's previous event ``Ej-1``:
   insert ``Ej`` if it comes after ``Ej-1``, otherwise annihilate
   ``Ej-1`` (the pulse never crossed that input's threshold).

Primary-input stimuli enter through exactly the same broadcast path, so a
runt pulse applied at a primary input is filtered per-input like any
internally generated glitch.

Two interchangeable *backends* implement this algorithm (see
``ENGINE_KINDS``):

* ``"reference"`` — :class:`HalotisSimulator`, the readable object-graph
  kernel below, walking ``Netlist``/``Gate``/``GateInput`` objects;
* ``"compiled"`` — :class:`repro.core.compiled.CompiledSimulator`, an
  array-lowered kernel whose hot path touches only integers and floats;
* ``"vector"`` — :class:`repro.core.vector.VectorSimulator`, a numpy
  N-lane kernel that advances whole batches in lockstep (requires
  numpy; see ``lockstep_batches``);
* ``"bitparallel"`` — :class:`repro.core.bitparallel.BitParallelSimulator`,
  a word-level kernel packing one stimulus per *bit* of a lane word
  (requires numpy; logic-exact with CDM-grade timing — see
  ``docs/architecture.md`` for the declared accuracy tiers).

All backends share :class:`EngineBase` (lifecycle, stimulus, inspection
and the :func:`simulate` facade).  The first three are property-tested
to produce bit-identical traces and statistics; ``"bitparallel"`` is
property-tested to produce bit-identical per-lane logic values.
"""

from __future__ import annotations

import abc
import dataclasses
import time as _time
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple, Type

from ..circuit.logic import evaluate as evaluate_function
from ..circuit.netlist import Net, Netlist
from ..config import DelayMode, SimulationConfig
from ..errors import SimulationError, SimulationLimitError, StimulusError
from ..obs.timing import PhaseTimer as _PhaseTimer
from . import inertial
from .cdm import ConventionalDelayModel
from .ddm import DegradationDelayModel
from .delay_model import DelayModel, DelayRequest
from .event_queue import make_queue
from .events import Event
from .state import KernelState, build_state
from .stats import SimulationStatistics
from .trace import TraceSet
from .transition import Transition


@dataclasses.dataclass(frozen=True)
class FilteredEventRecord:
    """Debug record of one annihilation (kept when
    ``config.record_filtered`` is set)."""

    time_now: float
    gate_name: str
    pin_index: int
    net_name: str
    previous_event_time: float
    new_event_time: float


# ----------------------------------------------------------------------
# engine registry
# ----------------------------------------------------------------------

#: Registry of simulation backends, mirroring ``QUEUE_KINDS``.  Keys are
#: the values accepted by ``SimulationConfig.engine_kind``, ``simulate()``
#: and the CLI's ``--engine`` option.
ENGINE_KINDS: Dict[str, Type[EngineBase]] = {}


def register_engine(kind: str) -> Callable[[type], type]:
    """Class decorator adding a backend to :data:`ENGINE_KINDS`."""

    def decorator(cls: type) -> type:
        cls.kind = kind
        ENGINE_KINDS[kind] = cls
        return cls

    return decorator


def _ensure_backends_registered() -> None:
    # The compiled/vector/bitparallel backends live in their own modules
    # (they import EngineBase from here); importing them lazily avoids a
    # circular import while guaranteeing the registry is complete
    # whenever it is consulted.  The numpy-backed backends register even
    # when numpy is absent, so "unknown engine kind" errors list them
    # and the availability failure stays a clear, actionable one.
    from . import bitparallel  # noqa: F401
    from . import compiled  # noqa: F401
    from . import vector  # noqa: F401


def resolve_engine_class(engine_kind: str) -> Type[EngineBase]:
    """Look a backend up in the registry, with the canonical error.

    The single home of the unknown-kind message — :func:`make_engine`,
    the simulation service and the server registry all resolve through
    here, so the message (and the registered-kind list in it) cannot
    drift between layers.
    """
    _ensure_backends_registered()
    try:
        return ENGINE_KINDS[engine_kind]
    except KeyError:
        raise SimulationError(
            "unknown engine kind %r (choose from %s)"
            % (engine_kind, sorted(ENGINE_KINDS))
        ) from None


def make_engine(
    netlist: Netlist,
    config: Optional[SimulationConfig] = None,
    queue_kind: str = "heap",
    engine_kind: Optional[str] = None,
) -> EngineBase:
    """Instantiate a simulation backend by name.

    ``engine_kind=None`` defers to ``config.engine_kind`` (and to
    ``"reference"`` when no config is given).
    """
    if engine_kind is None:
        engine_kind = config.engine_kind if config is not None else "reference"
    factory = resolve_engine_class(engine_kind)
    factory.ensure_available()
    return factory(netlist, config=config, queue_kind=queue_kind)


# ----------------------------------------------------------------------
# shared engine machinery
# ----------------------------------------------------------------------

class EngineBase(abc.ABC):
    """Lifecycle, stimulus, kernel loop and inspection shared by every
    backend.

    A backend provides four hooks: ``_build_state`` (DC-initialise its
    internal representation), ``_pi_value``/``_commit_pi_value`` (primary
    input bookkeeping), ``_broadcast_transition`` (fan a transition out to
    its receiving inputs) and ``_execute`` (process one popped event).
    Everything else — input validation, the run loop, trace plumbing,
    values/word inspection — lives here, so the backends cannot drift
    apart behaviourally.
    """

    #: registry key, set by :func:`register_engine`.
    kind: str = "abstract"

    #: True for backends that run over a ``Netlist.compile()`` lowering;
    #: batch drivers use this to pay the lowering once up front (and to
    #: ship it to shard workers) without hard-coding backend names.
    lowers_netlist: bool = False

    #: True for backends that can advance a whole batch in lockstep
    #: through one kernel; :func:`repro.core.batch.simulate_batch`
    #: routes to their ``run_lockstep_batch`` class method instead of
    #: replaying vectors one by one.
    lockstep_batches: bool = False

    #: One-line description shown in the CLI's ``--engine`` help; the
    #: option's choices *and* text come from the registry, so a newly
    #: registered backend appears in both with no CLI edit.
    cli_blurb: str = ""

    @classmethod
    def ensure_available(cls) -> None:
        """Raise :class:`SimulationError` when the backend's optional
        dependencies are missing (default: always available).

        Called by :func:`make_engine`, the simulation service and the
        server registry so a doomed selection fails at configuration
        time with an actionable message, never mid-simulation.
        """

    def sta_time_slack(self) -> float:
        """Per-arc upper-bound slack, in ns, the STA oracle must grant
        this engine instance (default: none).

        Backends whose scheduling contract can legitimately hold an
        event back beyond the nominal arc delay (the bit-parallel
        word-merge hold) report that per-level allowance here so
        ``check_sta_bounds`` stays a zero-false-positive sanitizer.
        """
        return 0.0

    @classmethod
    def sta_batch_time_slack(cls, netlist: Netlist, lanes: int) -> float:
        """Per-arc oracle slack for a ``run_lockstep_batch`` of
        ``lanes`` stimuli over ``netlist`` (default: none).

        The lockstep path constructs its engine internally, so the
        batch driver asks the class — not an instance — what allowance
        the verification of those results needs.
        """
        return 0.0

    def rebind_lowering(self) -> None:
        """Drop any backend state derived from the cached lowering
        (default: nothing to drop).

        The fault-injection layer (:mod:`repro.faults.inject`) patches
        the shared :class:`~repro.core.compiled.CompiledNetlist` tables
        in place and calls this before the next ``initialize()`` so
        backends that snapshot the lowering at kernel-construction time
        (vector, bitparallel) rebuild from the patched arrays.  The
        reference and compiled engines read cells/tables live per event
        and need no action.
        """

    def __init__(
        self,
        netlist: Netlist,
        config: Optional[SimulationConfig] = None,
        queue_kind: str = "heap",
    ):
        self.netlist = netlist
        self.config = config if config is not None else SimulationConfig()
        self.config.validate()
        self.vdd = netlist.vdd
        self.queue_kind = queue_kind
        self.queue = self._make_queue(queue_kind)
        self.stats = SimulationStatistics()
        self.traces = TraceSet(self.vdd)
        self.filtered_log: list[FilteredEventRecord] = []
        self.now = 0.0
        self._seq = 0
        self._ready = False

    # -- hooks ---------------------------------------------------------

    def _make_queue(self, queue_kind: str):
        """Build the event queue (validated against ``QUEUE_KINDS``)."""
        return make_queue(queue_kind)

    @abc.abstractmethod
    def _build_state(
        self,
        input_values: Dict[str, int],
        seed: Optional[Dict[str, int]],
    ) -> Dict[str, int]:
        """DC-initialise backend state; return the value of every net."""

    @abc.abstractmethod
    def _pi_value(self, net: Net) -> int:
        """Currently driven value of primary input ``net``."""

    @abc.abstractmethod
    def _commit_pi_value(self, net: Net, value: int) -> None:
        """Record that primary input ``net`` is now driven to ``value``."""

    @abc.abstractmethod
    def _broadcast_transition(self, transition: Transition, net: Net) -> None:
        """Generate threshold-crossing events at every fanout of ``net``."""

    @abc.abstractmethod
    def _execute(self, event) -> None:
        """Process one event popped from the queue."""

    def _count_toggle(self, net: Net) -> None:
        """Record one emitted/source transition on ``net`` for the
        switching-activity statistics."""
        self.stats.count_toggle(net.name)

    def _after_run(self) -> None:
        """Backend hook invoked after every ``run()``/``step()``."""

    def _wave_counters(self) -> Optional[Tuple[int, int]]:
        """``(waves, lanes)`` executed since the last ``initialize()``
        by a lockstep kernel (None for scalar backends).

        A *wave* is one vectorised execution step; *lanes* counts the
        per-lane events it carried.  Read once per run by the metrics
        publication in :func:`run_stimulus` — backends keep these as
        plain ints so the hot path never touches a metric object.
        """
        return None

    # -- lifecycle -----------------------------------------------------

    def initialize(
        self,
        input_values: Mapping[str, int],
        seed: Optional[Mapping[str, int]] = None,
        start_time: float = 0.0,
    ) -> None:
        """DC-initialise the circuit and reset all dynamic state.

        ``input_values`` must cover every primary input; ``seed`` provides
        starting guesses for feedback circuits (see
        :mod:`repro.circuit.evaluate`).
        """
        initial = self._build_state(
            dict(input_values), dict(seed) if seed else None
        )
        self.queue.clear()
        self.stats.reset()
        self.filtered_log = []
        self.now = start_time
        self._seq = 0
        self.traces = TraceSet(self.vdd)
        if self.config.record_traces:
            for net in self.netlist.nets.values():
                self.traces.create(net.name, initial[net.name])
        self._ready = True
        self._after_initialize()

    def _after_initialize(self) -> None:
        """Backend hook invoked once traces exist (bind fast paths)."""

    @property
    def initialized(self) -> bool:
        return self._ready

    def _require_ready(self) -> None:
        if not self._ready:
            raise SimulationError("call initialize() before simulating")

    # -- stimulus ------------------------------------------------------

    def set_input(
        self,
        name: str,
        value: int,
        at_time: float,
        slew: Optional[float] = None,
    ) -> Optional[Transition]:
        """Drive primary input ``name`` to ``value`` with a ramp starting
        at ``at_time``.

        Returns the source transition, or None when the input already
        holds ``value`` (no transition needed).
        """
        self._require_ready()
        net = self.netlist.net(name)
        if not net.is_primary_input:
            raise StimulusError("%r is not a primary input" % name)
        if value not in (0, 1):
            raise StimulusError("input value must be 0 or 1, got %r" % (value,))
        if at_time < self.now:
            raise StimulusError(
                "cannot drive input at %.4f ns: simulation time is %.4f ns"
                % (at_time, self.now)
            )
        if self._pi_value(net) == value:
            return None
        if slew is None:
            slew = self.config.default_input_slew
        if slew <= 0.0:
            raise StimulusError("input slew must be positive")

        transition = Transition(
            t50=at_time + 0.5 * slew,
            duration=slew,
            rising=(value == 1),
            net_name=name,
            cause_time=at_time,
        )
        self._commit_pi_value(net, value)
        self.stats.source_transitions += 1
        self._count_toggle(net)
        if self.config.record_traces:
            self.traces[name].append(transition)
        self._broadcast_transition(transition, net)
        return transition

    def apply_word(
        self,
        assignments: Mapping[str, int],
        at_time: float,
        slew: Optional[float] = None,
    ) -> int:
        """Drive several inputs at once; returns how many actually toggled."""
        changed = 0
        for name in sorted(assignments):
            if self.set_input(name, assignments[name], at_time, slew) is not None:
                changed += 1
        return changed

    # -- the kernel loop -----------------------------------------------

    def run(self, until: Optional[float] = None) -> SimulationStatistics:
        """Process events (up to and including ``until``; all if None)."""
        self._require_ready()
        wall_start = _time.perf_counter()
        peek_time = self.queue.peek_time
        pop = self.queue.pop
        execute = self._execute
        while True:
            next_time = peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = pop()
            if event is None:  # pragma: no cover - peek guarantees one
                break
            execute(event)
        if until is not None and until > self.now:
            self.now = until
        self.traces.horizon = max(self.traces.horizon, self.now)
        self.stats.runtime_seconds += _time.perf_counter() - wall_start
        self._after_run()
        return self.stats

    def step(self):
        """Execute a single event; returns it (None when queue empty).

        The concrete event type is backend-specific (an :class:`Event`
        for the reference backend).
        """
        self._require_ready()
        event = self.queue.pop()
        if event is None:
            return None
        self._execute(event)
        self.traces.horizon = max(self.traces.horizon, self.now)
        self._after_run()
        return event

    # -- inspection ----------------------------------------------------

    @abc.abstractmethod
    def value(self, net_name: str) -> int:
        """Committed logic value of a net at the current time."""

    def values(self) -> Dict[str, int]:
        """Committed logic values of every net."""
        return {name: self.value(name) for name in self.netlist.nets}

    def word(self, prefix: str, width: int) -> int:
        """Integer value of output bus ``prefix0..prefix{w-1}``."""
        word = 0
        for bit in range(width):
            word |= self.value("%s%d" % (prefix, bit)) << bit
        return word


# ----------------------------------------------------------------------
# the reference backend
# ----------------------------------------------------------------------

@register_engine("reference")
class HalotisSimulator(EngineBase):
    """Event-driven logic timing simulator with the IDDM.

    Typical use::

        simulator = HalotisSimulator(netlist, config=ddm_config())
        simulator.initialize({"a0": 0, ...})
        simulator.set_input("a0", 1, at_time=5.0)
        simulator.run(until=10.0)
        simulator.traces["s3"].edges()

    Args:
        netlist: the circuit (shared, never mutated).
        config: engine knobs; the default is HALOTIS-DDM.
        delay_model: explicit delay model; overrides ``config.delay_mode``
            when given (used by delay-model unit tests).
        queue_kind: event-queue implementation (``"heap"`` default).
    """

    cli_blurb = "readable object-graph kernel, the default"

    def __init__(
        self,
        netlist: Netlist,
        config: Optional[SimulationConfig] = None,
        delay_model: Optional[DelayModel] = None,
        queue_kind: str = "heap",
    ):
        super().__init__(netlist, config=config, queue_kind=queue_kind)
        if delay_model is not None:
            self.delay_model = delay_model
        elif self.config.delay_mode is DelayMode.DDM:
            self.delay_model = DegradationDelayModel(self.config.min_delay)
        else:
            self.delay_model = ConventionalDelayModel(self.config.min_delay)

        # Static precomputation: per-input threshold fractions and per-net
        # capacitive loads (both invariant during simulation).
        self._vt_fraction: Dict[int, float] = {}
        for gate_input in netlist.iter_gate_inputs():
            self._vt_fraction[gate_input.uid] = gate_input.vt / self.vdd
        self._net_load: Dict[str, float] = {
            net.name: net.load() for net in netlist.nets.values()
        }
        self._state: Optional[KernelState] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _build_state(
        self,
        input_values: Dict[str, int],
        seed: Optional[Dict[str, int]],
    ) -> Dict[str, int]:
        self._state = build_state(self.netlist, input_values, seed=seed)
        return self._state.initial_values

    def _require_state(self) -> KernelState:
        if self._state is None:
            raise SimulationError("call initialize() before simulating")
        return self._state

    # ------------------------------------------------------------------
    # stimulus hooks
    # ------------------------------------------------------------------

    def _pi_value(self, net: Net) -> int:
        return self._require_state().pi_values[net.name]

    def _commit_pi_value(self, net: Net, value: int) -> None:
        self._require_state().pi_values[net.name] = value

    def _broadcast_transition(self, transition: Transition, net: Net) -> None:
        self._broadcast(transition, net)

    # ------------------------------------------------------------------
    # event execution
    # ------------------------------------------------------------------

    def _execute(self, event: Event) -> None:
        if self.stats.events_executed >= self.config.max_events:
            raise SimulationLimitError(
                "event budget (%d) exhausted at t=%.4f ns — zero-delay "
                "oscillation?" % (self.config.max_events, self.now)
            )
        state = self._require_state()
        event.executed = True
        self.now = event.time
        self.stats.events_executed += 1

        gate_input = event.gate_input
        gate = gate_input.gate
        gate_state = state.gate_states[gate.index]
        if gate_state.input_values[gate_input.index] == event.value:
            # Defensive: alternation normally guarantees a change here.
            return
        gate_state.input_values[gate_input.index] = event.value

        output_value = evaluate_function(gate.cell.function, gate_state.input_values)
        if output_value == gate_state.output_value:
            return
        gate_state.output_value = output_value

        arc = gate.cell.arc(gate_input.index, rising=(output_value == 1))
        request = DelayRequest(
            arc=arc,
            c_load=self._net_load[gate.output.name],
            tau_in=event.transition.duration,
            vdd=self.vdd,
            t_event=event.time,
            t_last_output=gate_state.last_output_t50,
        )
        result = self.delay_model.compute(request)

        transition = Transition(
            t50=event.time + result.tp,
            duration=result.tau_out,
            rising=(output_value == 1),
            net_name=gate.output.name,
            degradation_factor=result.degradation_factor,
            cause_time=event.time,
        )
        gate_state.last_output_t50 = transition.t50
        self.stats.transitions_emitted += 1
        self.stats.count_toggle(gate.output.name)
        if result.degradation_factor < 1.0:
            self.stats.transitions_degraded += 1
        if result.fully_degraded:
            self.stats.transitions_fully_degraded += 1
        if self.config.record_traces:
            self.traces[gate.output.name].append(transition)
        self._broadcast(transition, gate.output)

    # ------------------------------------------------------------------
    # event generation + the inertial rule (paper Figure 4, inner loop)
    # ------------------------------------------------------------------

    def _broadcast(self, transition: Transition, net: Net) -> None:
        state = self._require_state()
        resolution = self.config.time_resolution
        for gate_input in net.fanouts:
            crossing = transition.crossing_time(self._vt_fraction[gate_input.uid])
            stack = state.input_event_stacks[gate_input.uid]
            previous = stack[-1] if stack else None

            if previous is not None and not previous.executed:
                decision = inertial.decide(
                    self.config.inertial_policy,
                    crossing,
                    previous,
                    transition,
                    self._vt_fraction[gate_input.uid],
                    resolution,
                )
                if decision.annihilate:
                    self.queue.cancel(previous)
                    stack.pop()
                    self.stats.events_filtered += 1
                    if self.config.record_filtered:
                        self.filtered_log.append(
                            FilteredEventRecord(
                                time_now=self.now,
                                gate_name=gate_input.gate.name,
                                pin_index=gate_input.index,
                                net_name=net.name,
                                previous_event_time=previous.time,
                                new_event_time=crossing,
                            )
                        )
                    continue
                event_time = decision.event_time
            else:
                event_time = crossing
                if previous is not None and crossing <= previous.time:
                    # The predecessor already executed; we cannot unwind
                    # the past, so the restoring event runs immediately.
                    self.stats.late_events += 1
                    event_time = max(crossing, self.now)
                elif crossing < self.now:
                    self.stats.late_events += 1
                    event_time = self.now

            self._seq += 1
            event = Event(
                time=event_time,
                seq=self._seq,
                gate_input=gate_input,
                transition=transition,
                value=transition.final_value,
            )
            self.queue.push(event)
            stack.append(event)
            self.stats.events_scheduled += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def value(self, net_name: str) -> int:
        """Committed logic value of a net at the current time."""
        state = self._require_state()
        net = self.netlist.net(net_name)
        if net.is_constant:
            return net.constant_value
        if net.is_primary_input:
            return state.pi_values[net_name]
        if net.driver is None:
            raise SimulationError("net %r has no driver" % net_name)
        return state.gate_states[net.driver.index].output_value


# ----------------------------------------------------------------------
# one-call convenience
# ----------------------------------------------------------------------

@dataclasses.dataclass
class SimulationResult:
    """Bundle returned by :func:`simulate` (and, per vector, by
    :func:`repro.core.batch.simulate_batch`).

    ``simulator`` is the engine the run executed on.  Batched runs reuse
    one engine across vectors, so there it reflects the *last* vector's
    final state; process-sharded batch results carry ``None`` (the
    worker's engine cannot cross the process boundary), and so do
    lockstep batches (``engine_kind="vector"``) — the N-lane kernel has
    no per-vector engine to expose.
    """

    traces: TraceSet
    stats: SimulationStatistics
    final_values: Dict[str, int]
    simulator: Optional[EngineBase]
    #: per-run observability summary (phase breakdown, counter totals),
    #: filled by :func:`run_stimulus` when ``config.collect_metrics``
    #: and the process metrics registry are enabled; None otherwise.
    #: Deliberately NOT part of SimulationStatistics: the parity suites
    #: compare statistics field by field across engines and transports,
    #: and wall-clock phase data is not bit-reproducible.
    metrics: Optional[Dict[str, object]] = None


# ----------------------------------------------------------------------
# engine observability (docs/observability.md)
# ----------------------------------------------------------------------
#
# Publication happens once per run (or once per lockstep batch), never
# per event: the counters below are derived from the counters the
# kernels already maintain, so the hot path is untouched and the
# "instrumented within 5% of uninstrumented" gate
# (benchmarks/test_obs_overhead.py) holds by construction.

#: SimulationStatistics field -> (metric name, help).  One counter per
#: kernel statistic, labelled by engine kind.
_ENGINE_COUNTERS: Tuple[Tuple[str, str, str], ...] = (
    ("events_executed", "halotis_engine_events_executed_total",
     "Events popped and executed by the kernel."),
    ("events_scheduled", "halotis_engine_events_scheduled_total",
     "Events inserted into the queue (including later-cancelled ones)."),
    ("events_filtered", "halotis_engine_events_filtered_total",
     "Inertial-rule annihilations (one filtered runt pulse each)."),
    ("late_events", "halotis_engine_late_events_total",
     "Events rescheduled to the current time (predecessor already ran)."),
    ("transitions_emitted", "halotis_engine_transitions_total",
     "Output transitions emitted by gates."),
    ("source_transitions", "halotis_engine_source_transitions_total",
     "Stimulus transitions applied to primary inputs."),
    ("transitions_degraded", "halotis_engine_transitions_degraded_total",
     "Transitions whose degradation factor was < 1 (DDM eq. 1)."),
    ("transitions_fully_degraded",
     "halotis_engine_transitions_fully_degraded_total",
     "Transitions emitted at min_delay because eq. 1 gave tp <= 0."),
)


def publish_engine_metrics(
    engine_kind: str,
    counts: Mapping[str, int],
    runs: int = 1,
    run_seconds: Optional[float] = None,
    phases: Optional[Mapping[str, float]] = None,
    waves: Optional[Tuple[int, int]] = None,
    registry=None,
) -> None:
    """Publish one run's (or one lockstep batch's) engine counters.

    ``counts`` maps :class:`SimulationStatistics` field names to totals;
    ``waves`` is the ``(waves, lanes)`` pair of a lockstep kernel.  The
    caller is responsible for the enabled check — this function always
    publishes.  Shared by :func:`run_stimulus` and the vector /
    bit-parallel lockstep drivers so the metric names cannot drift.
    """
    from ..obs import get_registry

    if registry is None:
        registry = get_registry()
    registry.counter(
        "halotis_engine_runs_total",
        "Completed stimulus runs (lockstep batches count one per lane).",
        ("engine",),
    ).inc(runs, engine=engine_kind)
    for field, name, help_text in _ENGINE_COUNTERS:
        value = counts.get(field, 0)
        if value:
            # Names come from the _ENGINE_COUNTERS literal table above;
            # the doc drift guard covers them there.
            registry.counter(name, help_text, ("engine",)).inc(  # halolint: allow(HL003)
                value, engine=engine_kind
            )
    if run_seconds is not None:
        registry.histogram(
            "halotis_engine_run_seconds",
            "End-to-end wall time of one run (lockstep: whole batch).",
            ("engine",),
        ).observe(run_seconds, engine=engine_kind)
    if phases:
        histogram = registry.histogram(
            "halotis_engine_phase_seconds",
            "Per-simulate() phase wall time "
            "(initialize/stimulus/settle/drain; lockstep for batches).",
            ("engine", "phase"),
        )
        for phase, seconds in phases.items():
            histogram.observe(seconds, engine=engine_kind, phase=phase)
    if waves is not None:
        registry.counter(
            "halotis_lockstep_waves_total",
            "Vectorised execution steps taken by lockstep kernels.",
            ("engine",),
        ).inc(waves[0], engine=engine_kind)
        registry.counter(
            "halotis_lockstep_lanes_total",
            "Per-lane events carried by those waves.",
            ("engine",),
        ).inc(waves[1], engine=engine_kind)


def _stat_counts(stats: SimulationStatistics) -> Dict[str, int]:
    """The publishable scalar counters of one run's statistics."""
    return {
        field: getattr(stats, field) for field, _name, _help in
        _ENGINE_COUNTERS
    }


def run_stimulus(
    simulator: EngineBase,
    stimulus,
    settle: float = 0.0,
    seed: Optional[Mapping[str, int]] = None,
) -> SimulationResult:
    """Run one complete ``stimulus`` through ``simulator``.

    (Re-)initialises the engine from the stimulus' DC assignment, plays
    every change, settles past the horizon and drains the queue — the
    loop behind :func:`simulate`, exposed separately so batched runs
    (:func:`repro.core.batch.simulate_batch`) can push many stimuli
    through one reused engine.  The engine's statistics object is
    replaced (not reset) so every returned result owns its counters.

    A stimulus carrying a ``fault`` attribute (a
    :class:`repro.faults.inject.FaultedStimulus`) is routed through the
    fault-injection layer, which patches the lowering, replays the base
    stimulus and guarantees restoration — one hook here covers every
    execution path (simulate(), in-process batches, shard workers,
    service workers), exactly like the STA-oracle hook below.
    """
    fault = getattr(stimulus, "fault", None)
    if fault is not None:
        from ..faults.inject import run_faulted_stimulus

        return run_faulted_stimulus(simulator, stimulus, settle=settle, seed=seed)
    collect = simulator.config.collect_metrics
    if collect:
        # One hook covers every execution path (simulate(), in-process
        # batches, shard workers, service workers) — the same funnel the
        # fault and STA-oracle hooks use.  All sampling is per *run*:
        # a handful of perf_counter stamps plus one counter batch below,
        # nothing per event (benchmarks/test_obs_overhead.py gates it).
        from ..obs import get_registry

        registry = get_registry()
        collect = registry.enabled
    timer = _PhaseTimer(enabled=collect)
    simulator.stats = SimulationStatistics()
    with timer.phase("initialize"):
        simulator.initialize(
            stimulus.initial_values(simulator.netlist), seed=seed
        )
    changes: Iterable[Tuple[float, Mapping[str, int], Optional[float]]]
    changes = stimulus.iter_changes()
    with timer.phase("stimulus"):
        for at_time, assignments, slew in changes:
            simulator.run(until=at_time)
            simulator.apply_word(assignments, at_time, slew)
    with timer.phase("settle"):
        simulator.run(until=stimulus.horizon + settle)
    with timer.phase("drain"):
        simulator.run()  # drain any events scheduled past the horizon
    result = SimulationResult(
        traces=simulator.traces,
        stats=simulator.stats,
        final_values=simulator.values(),
        simulator=simulator,
    )
    if collect:
        counts = _stat_counts(result.stats)
        phases = timer.phases()
        wall = timer.elapsed()
        publish_engine_metrics(
            simulator.kind, counts, runs=1, run_seconds=wall,
            phases=phases, waves=simulator._wave_counters(),
            registry=registry,
        )
        result.metrics = {
            "engine": simulator.kind,
            "wall_seconds": wall,
            "phases": phases,
            "counters": counts,
        }
    if simulator.config.check_sta_bounds:
        # Every execution path funnels through here — simulate(),
        # in-process batches, shard workers and service workers (the
        # config pickles across) — so one hook covers them all.  Only
        # the lockstep batch entry point needs its own (see
        # repro.core.batch).  Imported lazily: analysis sits above core.
        from ..analysis.sta import verify_result

        verify_result(
            simulator.netlist,
            stimulus,
            result,
            simulator.config,
            arc_slack=simulator.sta_time_slack(),
        )
    return result


def simulate(
    netlist: Netlist,
    stimulus,
    config: Optional[SimulationConfig] = None,
    settle: float = 0.0,
    queue_kind: str = "heap",
    seed: Optional[Mapping[str, int]] = None,
    engine_kind: Optional[str] = None,
) -> SimulationResult:
    """Run a complete stimulus through a fresh simulator.

    ``stimulus`` follows the protocol of
    :class:`repro.stimuli.vectors.VectorSequence`: it provides
    ``initial_values(netlist)``, an ``iter_changes()`` iterator of
    ``(time, assignments, slew)`` triples, and a ``horizon`` attribute.
    ``settle`` extends the run past the stimulus horizon so the last
    vector's effects propagate out.  ``engine_kind`` picks the backend
    (see ``ENGINE_KINDS``); None defers to ``config.engine_kind``.
    """
    simulator = make_engine(
        netlist, config=config, queue_kind=queue_kind, engine_kind=engine_kind
    )
    return run_stimulus(simulator, stimulus, settle=settle, seed=seed)
