"""Wallace-tree multiplier and Kogge-Stone adder."""

import itertools

import pytest

from repro.circuit import modules
from repro.circuit.evaluate import bus_assignment, bus_value, evaluate_netlist
from repro.circuit.expand import is_primitive
from repro.errors import NetlistError


def test_wallace_4x4_exhaustive():
    netlist = modules.wallace_multiplier(4)
    for a in range(16):
        for b in range(16):
            values = dict(bus_assignment("a", 4, a))
            values.update(bus_assignment("b", 4, b))
            assert bus_value(evaluate_netlist(netlist, values), "s", 8) == a * b


def test_wallace_is_primitive_when_expanded():
    netlist = modules.wallace_multiplier(4)
    assert is_primitive(netlist)


def test_wallace_macro_variant():
    netlist = modules.wallace_multiplier(3, expanded=False)
    for a, b in [(0, 0), (7, 7), (5, 6), (3, 4)]:
        values = dict(bus_assignment("a", 3, a))
        values.update(bus_assignment("b", 3, b))
        assert bus_value(evaluate_netlist(netlist, values), "s", 6) == a * b


def test_wallace_shallower_than_array():
    """The tree's raison d'etre: lower logic depth at equal width."""
    from repro.circuit import stats

    array = stats.gather(modules.array_multiplier(6))
    wallace = stats.gather(modules.wallace_multiplier(6))
    assert wallace.logic_depth < array.logic_depth


def test_wallace_width_bounds():
    with pytest.raises(NetlistError):
        modules.wallace_multiplier(1)


@pytest.mark.parametrize("width", [1, 4, 6])
def test_kogge_stone_exhaustive_or_sampled(width):
    netlist = modules.kogge_stone_adder(width)
    mask = (1 << width) - 1
    if width <= 4:
        cases = itertools.product(range(mask + 1), range(mask + 1), (0, 1))
    else:
        cases = [
            (0, 0, 0), (mask, mask, 1), (mask, 1, 0), (21 & mask, 42 & mask, 1),
            (0b101010 & mask, 0b010101 & mask, 0),
        ]
    for a, b, cin in cases:
        values = dict(bus_assignment("a", width, a))
        values.update(bus_assignment("b", width, b))
        values["cin"] = cin
        result = evaluate_netlist(netlist, values)
        total = bus_value(result, "s", width) | (result["cout"] << width)
        assert total == a + b + cin, (a, b, cin)


def test_kogge_stone_log_depth():
    """Prefix depth grows as log2(width): constant-ish beyond 8 bits,
    while the ripple chain grows linearly."""
    from repro.circuit import stats

    ripple16 = stats.gather(modules.ripple_adder(16, expanded=False))
    prefix16 = stats.gather(modules.kogge_stone_adder(16))
    prefix8 = stats.gather(modules.kogge_stone_adder(8))
    assert prefix16.logic_depth < ripple16.logic_depth
    assert prefix16.logic_depth - prefix8.logic_depth <= 2


def test_kogge_stone_simulates(mult4):
    from repro.config import ddm_config
    from repro.core.engine import simulate
    from repro.stimuli.vectors import VectorSequence

    netlist = modules.kogge_stone_adder(4)
    values = dict(bus_assignment("a", 4, 9))
    values.update(bus_assignment("b", 4, 7))
    values["cin"] = 1
    stimulus = VectorSequence([(0.0, {k: 0 for k in values}), (3.0, values)],
                              tail=5.0)
    result = simulate(netlist, stimulus, config=ddm_config())
    total = sum(result.final_values["s%d" % k] << k for k in range(4))
    total |= result.final_values["cout"] << 4
    assert total == 17
