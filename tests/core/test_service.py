"""The persistent warm-engine service: parity, failure paths, lifecycle.

The service's contract extends the batch contract: a vector simulated on
a warm pooled worker is bit-identical — traces, raw transition streams,
final values, every statistics counter except wall-clock — to a
standalone ``simulate()``, *regardless of the result transport* (shared
memory or pickle) and across worker crashes.  These tests pin that, plus
the operational surface: crash detection with restart + requeue, retry
budgets, close()/context-manager shutdown, and the shm-unavailable
pickle fallback.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.config import cdm_config, ddm_config
from repro.core import service as service_module
from repro.core.batch import simulate_batch
from repro.core.engine import simulate
from repro.core.service import SimulationService
from repro.core.shm_transport import pack_result, unpack_result
from repro.errors import ServiceError
from repro.experiments import common
from repro.stimuli.patterns import random_vector_batch

from test_backend_parity import random_netlist, random_stimulus
from test_batch import _STATS_FIELDS


def assert_results_identical(result, standalone, netlist, context=""):
    for field in _STATS_FIELDS:
        assert getattr(result.stats, field) == getattr(
            standalone.stats, field
        ), "%s: stats.%s differs" % (context, field)
    assert result.final_values == standalone.final_values, context
    assert result.traces.horizon == standalone.traces.horizon, context
    assert result.traces.names() == standalone.traces.names(), context
    for name in standalone.traces.names():
        got, want = result.traces[name], standalone.traces[name]
        assert got.initial_value == want.initial_value, (context, name)
        got_raw = [
            (t.t50, t.duration, t.rising, t.net_name,
             t.degradation_factor, t.cause_time)
            for t in got.transitions
        ]
        want_raw = [
            (t.t50, t.duration, t.rising, t.net_name,
             t.degradation_factor, t.cause_time)
            for t in want.transitions
        ]
        assert got_raw == want_raw, (context, name)


# ----------------------------------------------------------------------
# parity: shm and pickle transports, both engines, both delay modes
# ----------------------------------------------------------------------

@pytest.mark.parametrize("shm", [True, False], ids=["shm", "pickle"])
@pytest.mark.parametrize("engine_kind", ["reference", "compiled", "vector"])
@pytest.mark.parametrize("mode", ["ddm", "cdm"])
def test_service_parity_with_standalone(mult4, mode, engine_kind, shm):
    config = ddm_config() if mode == "ddm" else cdm_config()
    stimuli = common.paper_stimulus_batch()
    with SimulationService(
        mult4, config=config, workers=2, engine_kind=engine_kind,
        shm_transport=shm,
    ) as service:
        assert service.transport == ("shm" if shm else "pickle")
        batch = service.run_batch(stimuli)
    assert len(batch) == len(stimuli)
    for position, stimulus in enumerate(stimuli):
        standalone = simulate(
            mult4, stimulus, config=config, engine_kind=engine_kind
        )
        assert batch[position].simulator is None
        assert_results_identical(
            batch[position], standalone, mult4,
            context="%s/%s vector %d" % (mode, engine_kind, position),
        )


def test_shm_and_pickle_transports_bit_identical(mult4):
    """The two transports of the *same* workload agree record-for-record."""
    stimuli = common.paper_stimulus_batch()
    config = ddm_config()
    with SimulationService(
        mult4, config=config, workers=2, engine_kind="compiled",
        shm_transport=True,
    ) as shm_service:
        via_shm = shm_service.run_batch(stimuli)
    with SimulationService(
        mult4, config=config, workers=2, engine_kind="compiled",
        shm_transport=False,
    ) as pickle_service:
        via_pickle = pickle_service.run_batch(stimuli)
    for position in range(len(stimuli)):
        assert_results_identical(
            via_shm[position], via_pickle[position], mult4,
            context="vector %d" % position,
        )


def test_service_parity_on_random_circuit():
    netlist = random_netlist(5, 4, 14)
    input_names = [net.name for net in netlist.primary_inputs]
    stimuli = [
        random_stimulus(41 + k, input_names, vectors=2 + k % 3)
        for k in range(6)
    ]
    with SimulationService(
        netlist, config=ddm_config(), workers=3, engine_kind="compiled"
    ) as service:
        batch = service.run_batch(stimuli)
    for position, stimulus in enumerate(stimuli):
        standalone = simulate(
            netlist, stimulus, config=ddm_config(), engine_kind="compiled"
        )
        assert_results_identical(
            batch[position], standalone, netlist,
            context="vector %d" % position,
        )


def test_warm_service_survives_many_batches(mult4):
    """Steady state: batches keep flowing through the same worker set."""
    stimuli = common.paper_stimulus_batch()
    with SimulationService(
        mult4, config=ddm_config(record_traces=False), workers=2,
        engine_kind="compiled",
    ) as service:
        pids = {worker.process.pid for worker in service._workers}
        reference = service.run_batch(stimuli)
        for _round in range(3):
            batch = service.run_batch(stimuli)
            assert batch.lowering_seconds == 0.0
            for got, want in zip(batch, reference):
                assert got.final_values == want.final_values
                assert got.stats.events_executed == want.stats.events_executed
        assert {w.process.pid for w in service._workers} == pids
        assert service.worker_restarts == 0


@pytest.mark.parametrize("shm", [True, False], ids=["shm", "pickle"])
def test_chunked_batches_bit_identical_to_unchunked(mult4, shm):
    """``chunk > 1`` is pure transport amortisation: results are
    bit-identical to the per-vector dispatch on both transports, in
    input order, including a ragged final chunk."""
    stimuli = common.paper_stimulus_batch() * 2  # 10 vectors, chunk 4 -> ragged
    config = ddm_config()
    with SimulationService(
        mult4, config=config, workers=2, engine_kind="compiled",
        shm_transport=shm,
    ) as service:
        unchunked = service.submit_batch(stimuli).wait()
        chunked = service.submit_batch(stimuli, chunk=4).wait()
        whole = service.submit_batch(stimuli, chunk=len(stimuli)).wait()
    for position in range(len(stimuli)):
        assert_results_identical(
            chunked[position], unchunked[position], mult4,
            context="chunk=4 vector %d" % position,
        )
        assert_results_identical(
            whole[position], unchunked[position], mult4,
            context="chunk=all vector %d" % position,
        )


def test_chunk_must_be_positive(mult4):
    stimuli = common.paper_stimulus_batch()
    with (
        SimulationService(
            mult4, config=ddm_config(), workers=1, engine_kind="compiled"
        ) as service,
        pytest.raises(ServiceError, match="chunk"),
    ):
        service.submit_batch(stimuli, chunk=0)


def test_error_mid_chunk_fails_the_batch_cleanly(mult4):
    """A stimulus exception inside a chunk fails the job with the
    offending vector's index; the pool keeps serving."""
    input_names = [net.name for net in mult4.primary_inputs]
    good = random_vector_batch(
        input_names, batch=5, count=1, period=3.0, base_seed=53
    )
    bad = random_vector_batch(
        ["not-a-net"], batch=1, count=1, period=3.0, base_seed=53
    )
    mixed = good[:3] + bad + good[3:]
    with SimulationService(
        mult4, config=ddm_config(), workers=1, engine_kind="compiled"
    ) as service:
        with pytest.raises(ServiceError, match="vector 3 failed"):
            service.submit_batch(mixed, chunk=3).wait()
        assert service.worker_restarts == 0
        batch = service.run_batch(good)
        assert len(batch) == len(good)


def test_as_completed_yields_every_vector(mult4):
    input_names = [net.name for net in mult4.primary_inputs]
    stimuli = random_vector_batch(
        input_names, batch=6, count=2, period=3.0, base_seed=23
    )
    with SimulationService(
        mult4, config=ddm_config(record_traces=False), workers=2,
        engine_kind="compiled",
    ) as service:
        job = service.submit_batch(stimuli)
        seen = dict(job.as_completed())
    assert sorted(seen) == list(range(len(stimuli)))
    for index, stimulus in enumerate(stimuli):
        standalone = simulate(
            mult4, stimulus, config=ddm_config(record_traces=False),
            engine_kind="compiled",
        )
        assert seen[index].final_values == standalone.final_values


def test_shm_buffer_grows_for_large_traces(mult4):
    """A payload past the initial 64 KiB segment forces buffer growth;
    results stay bit-identical before, across and after the growth."""
    input_names = [net.name for net in mult4.primary_inputs]
    small = random_vector_batch(
        input_names, batch=2, count=2, period=2.0, base_seed=3
    )
    # ~75 KB of packed records on this workload: one growth step.
    large = random_vector_batch(
        input_names, batch=2, count=30, period=2.0, base_seed=3
    )
    with SimulationService(
        mult4, config=ddm_config(), workers=1, engine_kind="compiled",
        shm_transport=True,
    ) as service:
        ordered = service.run_batch(small + large + small)
        worker = service._workers[0]
        assert worker.last_segment is not None
        assert worker.last_segment.endswith("g2"), (
            "expected one buffer growth, last segment %r"
            % worker.last_segment
        )
    for position, stimulus in enumerate(small + large + small):
        standalone = simulate(
            mult4, stimulus, config=ddm_config(), engine_kind="compiled"
        )
        assert_results_identical(
            ordered[position], standalone, mult4,
            context="growth vector %d" % position,
        )


# ----------------------------------------------------------------------
# the simulate_batch(..., service=...) front end
# ----------------------------------------------------------------------

def test_simulate_batch_routes_through_service(mult4):
    stimuli = common.paper_stimulus_batch()
    config = ddm_config()
    with SimulationService(
        mult4, config=config, workers=2, engine_kind="compiled"
    ) as service:
        batch = simulate_batch(
            mult4, stimuli, config=config, engine_kind="compiled",
            service=service,
        )
        assert batch.jobs == 2
        assert batch.engine_kind == "compiled"
        plain = simulate_batch(
            mult4, stimuli, config=config, engine_kind="compiled"
        )
        for got, want in zip(batch, plain):
            assert got.final_values == want.final_values
            assert got.stats.events_executed == want.stats.events_executed


def test_simulate_batch_service_knob_mismatches(mult4, c17):
    config = ddm_config()
    stimuli = common.paper_stimulus_batch()
    with SimulationService(
        mult4, config=config, workers=1, engine_kind="compiled"
    ) as service:
        with pytest.raises(ServiceError):
            simulate_batch(c17, stimuli, service=service)
        with pytest.raises(ServiceError):
            simulate_batch(
                mult4, stimuli, engine_kind="reference", service=service
            )
        with pytest.raises(ServiceError):
            simulate_batch(
                mult4, stimuli, queue_kind="sorted-list", service=service
            )
        with pytest.raises(ServiceError):
            simulate_batch(mult4, stimuli, config=ddm_config(), service=service)


def test_run_halotis_service_matches_single_runs():
    from repro.config import DelayMode

    for mode in (DelayMode.DDM, DelayMode.CDM):
        batch = common.run_halotis_service(mode)
        for which in (1, 2):
            single = common.run_halotis(which, mode, engine_kind="compiled")
            result = batch[which - 1]
            assert result.stats.events_executed == single.stats.events_executed
            assert result.final_values == single.final_values
            assert common.settled_words_logic(result, which) == (
                common.expected_words(which)
            )


# ----------------------------------------------------------------------
# failure paths
# ----------------------------------------------------------------------

class _CrashOnceStimulus:
    """Hard-crashes the first worker process that touches it, then runs
    normally — the flag file records that the crash already happened.

    Stimuli cross the process boundary by pickle, so this must be a
    module-level class.
    """

    def __init__(self, inner, flag_path):
        self._inner = inner
        self._flag_path = flag_path
        self.horizon = inner.horizon

    def _maybe_crash(self):
        if not os.path.exists(self._flag_path):
            with open(self._flag_path, "w") as handle:
                handle.write("crashed")
            os._exit(17)

    def initial_values(self, netlist):
        self._maybe_crash()
        return self._inner.initial_values(netlist)

    def iter_changes(self):
        return self._inner.iter_changes()


class _AlwaysCrashStimulus(_CrashOnceStimulus):
    """Kills every worker that touches it; exhausts the retry budget."""

    def _maybe_crash(self):
        os._exit(17)


def test_worker_killed_mid_batch_restarts_and_requeues(mult4):
    input_names = [net.name for net in mult4.primary_inputs]
    stimuli = random_vector_batch(
        input_names, batch=8, count=2, period=3.0, base_seed=7
    )
    config = ddm_config(record_traces=False)
    with SimulationService(
        mult4, config=config, workers=2, engine_kind="compiled"
    ) as service:
        job = service.submit_batch(stimuli)
        os.kill(service._workers[0].process.pid, signal.SIGKILL)
        results = job.wait()
        assert service.worker_restarts >= 1
        # Both workers alive again after recovery.
        assert all(w.process.is_alive() for w in service._workers)
        for index, stimulus in enumerate(stimuli):
            standalone = simulate(
                mult4, stimulus, config=config, engine_kind="compiled"
            )
            assert results[index].final_values == standalone.final_values
            assert (
                results[index].stats.events_executed
                == standalone.stats.events_executed
            )
        # The service keeps serving after the crash.
        again = service.run_batch(stimuli[:2])
        assert len(again) == 2


def test_crashing_stimulus_is_requeued_and_recovers(mult4, tmp_path):
    input_names = [net.name for net in mult4.primary_inputs]
    plain = random_vector_batch(
        input_names, batch=3, count=1, period=3.0, base_seed=31
    )
    flag = str(tmp_path / "crashed-once")
    stimuli = [plain[0], _CrashOnceStimulus(plain[1], flag), plain[2]]
    with SimulationService(
        mult4, config=ddm_config(record_traces=False), workers=2,
        engine_kind="compiled",
    ) as service:
        results = service.submit_batch(stimuli).wait()
        assert service.worker_restarts == 1
        assert service.tasks_requeued == 1
    assert os.path.exists(flag)
    for index in range(3):
        standalone = simulate(
            mult4, plain[index], config=ddm_config(record_traces=False),
            engine_kind="compiled",
        )
        assert results[index].final_values == standalone.final_values


def test_poison_stimulus_exhausts_retry_budget(mult4, tmp_path):
    input_names = [net.name for net in mult4.primary_inputs]
    plain = random_vector_batch(
        input_names, batch=2, count=1, period=3.0, base_seed=37
    )
    poison = _AlwaysCrashStimulus(plain[0], str(tmp_path / "unused"))
    with SimulationService(
        mult4, config=ddm_config(record_traces=False), workers=1,
        engine_kind="compiled", max_task_retries=1,
    ) as service:
        with pytest.raises(ServiceError, match="crashed its worker"):
            service.submit_batch([poison]).wait()
        # 1 initial attempt + 1 retry, each killing a worker.
        assert service.worker_restarts == 2
        # The service is not poisoned: fresh work still runs.
        batch = service.run_batch(plain)
        assert len(batch) == 2


def test_simulation_error_propagates_without_killing_workers(mult4):
    """A stimulus *exception* (vs. a crash) fails the batch cleanly."""
    input_names = [net.name for net in mult4.primary_inputs]
    good = random_vector_batch(
        input_names, batch=1, count=1, period=3.0, base_seed=43
    )
    bad = random_vector_batch(
        ["not-a-net"], batch=1, count=1, period=3.0, base_seed=43
    )
    with SimulationService(
        mult4, config=ddm_config(), workers=1, engine_kind="compiled"
    ) as service:
        with pytest.raises(ServiceError, match="StimulusError"):
            service.submit_batch(bad).wait()
        assert service.worker_restarts == 0
        batch = service.run_batch(good)
        assert len(batch) == 1


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------

class _WedgedStimulus(_CrashOnceStimulus):
    """Blocks its worker in a long sleep — simulates wedged native code
    (or a runaway vector) that ignores the poison pill at close time."""

    def _maybe_crash(self):
        import time

        time.sleep(60.0)


def test_close_on_wedged_worker_is_bounded(mult4):
    """close() must escalate (join timeout -> terminate -> kill) and
    return promptly instead of waiting a wedged worker out."""
    import time

    input_names = [net.name for net in mult4.primary_inputs]
    plain = random_vector_batch(
        input_names, batch=1, count=1, period=3.0, base_seed=51
    )
    service = SimulationService(
        mult4, config=ddm_config(record_traces=False), workers=1,
        engine_kind="compiled",
    )
    service.submit_batch([_WedgedStimulus(plain[0], "unused")])
    # Let the worker actually pick the task up before closing.
    time.sleep(0.3)
    processes = [worker.process for worker in service._workers]
    start = time.monotonic()
    service.close(timeout=0.5)
    elapsed = time.monotonic() - start
    assert elapsed < 10.0, "close() hung %.1fs on a wedged worker" % elapsed
    assert service.closed
    assert all(not process.is_alive() for process in processes)
    service.close()  # still idempotent afterwards


def test_close_on_already_crashed_pool_is_quick(mult4):
    """Every worker SIGKILLed behind the service's back: close() must
    neither hang nor raise."""
    import time

    service = SimulationService(
        mult4, config=ddm_config(), workers=2, engine_kind="compiled"
    )
    for worker in service._workers:
        os.kill(worker.process.pid, signal.SIGKILL)
        worker.process.join(5.0)
    start = time.monotonic()
    service.close(timeout=2.0)
    assert time.monotonic() - start < 10.0
    assert service.closed
    service.close()


def test_failed_construction_leaves_closeable_wreckage(mult4):
    """A constructor failure before worker spawn must leave close()
    (and therefore __del__) a safe no-op — the never-started pool."""
    from repro.errors import SimulationError as _SimulationError

    try:
        SimulationService(mult4, engine_kind="no-such-backend")
    except _SimulationError as error:
        assert "no-such-backend" in str(error)
    else:  # pragma: no cover
        pytest.fail("bad engine kind must raise")
    # The same early-attribute guarantee, exercised directly: close()
    # before any worker exists.
    service = SimulationService.__new__(SimulationService)
    service._closed = False
    service._workers = []
    service._result_queue = None
    service._attachments = {}
    service.close()
    assert service.closed


def test_close_is_idempotent_and_terminal(mult4):
    service = SimulationService(
        mult4, config=ddm_config(), workers=2, engine_kind="compiled"
    )
    processes = [worker.process for worker in service._workers]
    service.close()
    service.close()
    assert service.closed
    assert all(not process.is_alive() for process in processes)
    with pytest.raises(ServiceError):
        service.submit_batch(common.paper_stimulus_batch())


def test_context_manager_closes_on_exit(mult4):
    with SimulationService(
        mult4, config=ddm_config(), workers=1, engine_kind="compiled"
    ) as service:
        processes = [worker.process for worker in service._workers]
    assert service.closed
    assert all(not process.is_alive() for process in processes)


def test_submit_rejects_empty_and_bad_workers(mult4):
    with pytest.raises(ServiceError):
        SimulationService(mult4, workers=0)
    with (
        SimulationService(mult4, workers=1) as service,
        pytest.raises(ServiceError),
    ):
        service.submit_batch([])


def test_config_service_knobs_flow_through(mult4):
    config = ddm_config(service_workers=3, shm_transport=False,
                        engine_kind="compiled")
    with SimulationService(mult4, config=config) as service:
        assert service.workers == 3
        assert service.transport == "pickle"
        assert service.engine_kind == "compiled"


def test_shm_unavailable_falls_back_to_pickle(mult4, monkeypatch):
    """Platforms without shared memory still serve bit-identical results."""
    monkeypatch.setattr(service_module, "_shared_memory", None)
    stimuli = common.paper_stimulus_batch()
    with SimulationService(
        mult4, config=ddm_config(), workers=2, engine_kind="compiled",
        shm_transport=True,  # requested, but unavailable
    ) as service:
        assert service.transport == "pickle"
        batch = service.run_batch(stimuli)
    for position, stimulus in enumerate(stimuli):
        standalone = simulate(
            mult4, stimulus, config=ddm_config(), engine_kind="compiled"
        )
        assert_results_identical(
            batch[position], standalone, mult4,
            context="fallback vector %d" % position,
        )


# ----------------------------------------------------------------------
# the packed record codec itself
# ----------------------------------------------------------------------

def test_pack_unpack_roundtrip_is_lossless(mult4):
    result = simulate(
        mult4, common.paper_stimulus(1), config=ddm_config(),
        engine_kind="compiled",
    )
    payload, meta = pack_result(result)
    assert meta["nbytes"] == len(payload)
    # Oversized buffer: unpack must honor nbytes, not buffer length.
    rebuilt = unpack_result(meta, payload + b"\x00" * 64)
    assert_results_identical(rebuilt, result, mult4, context="roundtrip")
    assert rebuilt.simulator is None


def test_pack_unpack_handles_empty_traces(mult4):
    result = simulate(
        mult4, common.paper_stimulus(1),
        config=ddm_config(record_traces=False), engine_kind="compiled",
    )
    payload, meta = pack_result(result)
    assert payload == b""
    rebuilt = unpack_result(meta, payload)
    assert rebuilt.final_values == result.final_values
    assert len(rebuilt.traces) == 0
