"""Paper Figure 3: one transition, several events.

A single falling transition on a net that drives three gate inputs with
distinct thresholds generates three *events*, one per input, ordered by
threshold: the highest threshold is crossed first on a falling ramp.
This driver reproduces the figure's table (transition -> events E1..E3
with their gates, pins and thresholds).
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..circuit.builder import CircuitBuilder
from ..config import ddm_config
from ..core.engine import HalotisSimulator
from ..core.transition import Transition


@dataclasses.dataclass(frozen=True)
class EventRow:
    """One row of the figure's table."""

    event_name: str
    time: float
    gate: str
    pin_index: int
    threshold_v: float


@dataclasses.dataclass
class Fig3Result:
    transition_t50: float
    transition_duration: float
    rows: List[EventRow]

    def format(self) -> str:
        lines = [
            "Figure 3 — a falling transition (t50=%.2f ns, tau=%.2f ns) and "
            "its events" % (self.transition_t50, self.transition_duration),
            "",
            "event  time/ns   gate  pin  VT/V",
        ]
        for row in self.rows:
            lines.append(
                "%-6s %8.4f  %-5s %3d  %.2f"
                % (row.event_name, row.time, row.gate, row.pin_index,
                   row.threshold_v)
            )
        return "\n".join(lines)


def run(t50: float = 1.0, duration: float = 0.8) -> Fig3Result:
    """Build the three-receiver net, apply one falling ramp, list events.

    The receivers are INV_HT (VT 3.4), INV (VT 2.4) and INV_LT (VT 1.6) —
    on a falling ramp the events fire in exactly that order, the point of
    the paper's figure.
    """
    builder = CircuitBuilder(name="fig3")
    out = builder.input("out")
    builder.output(builder.gate("INV_HT", out, name="G2"), "o2")
    builder.output(builder.gate("INV", out, name="G3"), "o3")
    builder.output(builder.gate("INV_LT", out, name="G1"), "o1")
    netlist = builder.build()

    simulator = HalotisSimulator(netlist, config=ddm_config())
    simulator.initialize({"out": 1})
    transition = Transition(
        t50=t50, duration=duration, rising=False, net_name="out"
    )
    simulator._broadcast(transition, netlist.net("out"))

    rows: List[EventRow] = []
    order = 0
    while True:
        event = simulator.queue.pop()
        if event is None:
            break
        order += 1
        rows.append(
            EventRow(
                event_name="E%d" % order,
                time=event.time,
                gate=event.gate_input.gate.name,
                pin_index=event.gate_input.index,
                threshold_v=event.gate_input.vt,
            )
        )
    return Fig3Result(
        transition_t50=t50, transition_duration=duration, rows=rows
    )
