"""Electrical (transistor-level) simulation substrate.

This subpackage is the repo's substitute for the paper's HSPICE runs
(DESIGN.md, "Substitutions"): a transient simulator for complementary
CMOS gate networks built on the Sakurai–Newton alpha-power-law MOSFET
model, integrated with a vectorised fixed-step Runge–Kutta scheme.

It exists so every comparison the paper makes against electrical
simulation — waveform agreement, pulse degradation, per-input threshold
selectivity, the 2-3 orders-of-magnitude CPU gap — can be regenerated
end-to-end inside this repository.
"""

from .technology import Technology, default_technology
from .device import MosfetParams, mosfet_current
from .simulator import AnalogSimulator, AnalogResult
from .waveform import AnalogWaveform

__all__ = [
    "Technology",
    "default_technology",
    "MosfetParams",
    "mosfet_current",
    "AnalogSimulator",
    "AnalogResult",
    "AnalogWaveform",
]
