"""Paper Table 1: simulation statistics (events / filtered events).

For both operand sequences the driver runs HALOTIS-DDM and HALOTIS-CDM
and tabulates executed events, filtered events and the CDM activity
overestimation — next to the paper's own numbers.

The shape claims the paper makes (and our benchmarks assert):

* CDM executes substantially more events than DDM (paper: +47%/+52%),
* DDM filters an order of magnitude more events than CDM
  (paper: 27 vs 1 and 66 vs 6).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ..analysis.activity import ActivityComparison, compare_activity
from ..analysis.report import Table
from ..config import DelayMode
from . import common


@dataclasses.dataclass
class Table1Result:
    rows: Dict[int, ActivityComparison]

    def format(self) -> str:
        table = Table(
            [
                "sequence",
                "events DDM",
                "events CDM",
                "overst. CDM %",
                "filtered DDM",
                "filtered CDM",
            ],
            title="Table 1 — HALOTIS simulation statistics (measured)",
        )
        for which in sorted(self.rows):
            table.add_row(self.rows[which].as_row())
        reference = Table(
            [
                "sequence",
                "events DDM",
                "events CDM",
                "overst. CDM %",
                "filtered DDM",
                "filtered CDM",
            ],
            title="Table 1 — paper reference values",
        )
        for which in sorted(common.PAPER_TABLE1):
            ddm_events, cdm_events, over, ddm_filtered, cdm_filtered = (
                common.PAPER_TABLE1[which]
            )
            reference.add_row(
                [
                    common.SEQUENCE_LABELS[which],
                    ddm_events,
                    cdm_events,
                    over,
                    ddm_filtered,
                    cdm_filtered,
                ]
            )
        return table.render() + "\n\n" + reference.render()

    def shape_holds(
        self,
        overestimation_band: tuple = (20.0, 110.0),
        filter_ratio_min: float = 5.0,
    ) -> bool:
        """The paper's qualitative claims, as one predicate."""
        for row in self.rows.values():
            if not (
                overestimation_band[0]
                <= row.event_overestimation_percent
                <= overestimation_band[1]
            ):
                return False
            if row.ddm_filtered < filter_ratio_min * max(row.cdm_filtered, 1):
                return False
        return True


def run(record_traces: bool = False) -> Table1Result:
    """Regenerate Table 1 (both sequences, both delay models)."""
    rows: Dict[int, ActivityComparison] = {}
    for which in (1, 2):
        ddm = common.run_halotis(which, DelayMode.DDM, record_traces=record_traces)
        cdm = common.run_halotis(which, DelayMode.CDM, record_traces=record_traces)
        rows[which] = compare_activity(
            common.SEQUENCE_LABELS[which], ddm.stats, cdm.stats
        )
    return Table1Result(rows=rows)
