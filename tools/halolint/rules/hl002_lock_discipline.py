"""HL002 — lock discipline on declared-shared attributes.

The concurrent layers (``SimulationService`` pools, the
``NetlistRegistry`` routing table, the ``SimulationServer`` event loop)
share state between threads.  An attribute declared shared via::

    self._entries: Dict[str, Entry] = {}  # halolint: guarded-by(_lock)

may only be read or written

* inside a ``with self._lock:`` block (lexically),
* in ``__init__`` (construction happens-before sharing),
* in a function annotated ``# halolint: locked(_lock)`` — the
  caller-holds-the-lock / owning-dispatch-thread seam.

Everything else is a finding: exactly the class of race the PR 3/4
close-hang and Nagle-stall bugs came from, where an attribute was safe
on one thread until a later PR touched it from another.

The check is lexical, not interprocedural, by design: a human can
verify a ``locked()`` annotation in review, while an unannotated access
outside any ``with`` block is never provably safe.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.findings import Finding, Severity

from ..engine import Project, SourceFile
from ..registry import rule


def _with_locks(node: ast.AST) -> Set[str]:
    """Lock attribute names a ``with`` statement acquires via ``self.X``."""
    locks: Set[str] = set()
    if isinstance(node, (ast.With, ast.AsyncWith)):
        for item in node.items:
            expr = item.context_expr
            # ``with self._lock:`` — also accept ``self._lock.acquire_x()``
            # style context helpers like ``self._lock.read_locked()``.
            if isinstance(expr, ast.Call):
                expr = expr.func
                if isinstance(expr, ast.Attribute) and isinstance(
                    expr.value, ast.Attribute
                ):
                    expr = expr.value
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                locks.add(expr.attr)
    return locks


class _ClassScanner:
    """Check one class body against its guarded-by declarations."""

    def __init__(self, source: SourceFile, class_node: ast.ClassDef):
        self.source = source
        self.class_node = class_node
        self.findings: List[Finding] = []
        #: attribute name → lock name.
        self.guarded: Dict[str, str] = {}
        self._collect_declarations()

    def _collect_declarations(self) -> None:
        for node in ast.walk(self.class_node):
            if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                continue
            lock = self.source.guarded_by.get(node.lineno)
            if lock is None:
                continue
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.guarded[target.attr] = lock
                    break
            else:
                self.findings.append(Finding(
                    severity=Severity.ERROR,
                    rule="HL002",
                    message="guarded-by(%s) annotation is not attached "
                    "to a self-attribute assignment" % lock,
                    file=self.source.rel,
                    line=node.lineno,
                ))

    def _function_locks(self, func: ast.AST) -> Set[str]:
        """Locks a ``locked()`` annotation grants this function."""
        granted: Set[str] = set()
        for line in (func.lineno, func.lineno - 1):
            lock = self.source.locked.get(line)
            if lock is not None:
                granted.add(lock)
        return granted

    def scan(self) -> List[Finding]:
        if not self.guarded:
            return self.findings
        for node in self.class_node.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "__init__":
                    continue
                self._scan_function(node, self._function_locks(node))
        return self.findings

    def _scan_function(self, func: ast.AST, held: Set[str]) -> None:
        for statement in getattr(func, "body", []):
            self._scan_node(statement, held)

    def _scan_node(self, node: ast.AST, held: Set[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def runs later, possibly without the lock; it
            # holds only what its own annotation grants.
            self._scan_function(node, self._function_locks(node))
            return
        if isinstance(node, ast.Lambda):
            self._scan_node(node.body, set())
            return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = _with_locks(node)
            for item in node.items:
                self._scan_node(item.context_expr, held)
                if item.optional_vars is not None:
                    self._scan_node(item.optional_vars, held)
            for statement in node.body:
                self._scan_node(statement, held | acquired)
            return
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in self.guarded
        ):
            lock = self.guarded[node.attr]
            if lock not in held:
                self.findings.append(Finding(
                    severity=Severity.ERROR,
                    rule="HL002",
                    message="access to %s.%s (guarded by self.%s) outside "
                    "a 'with self.%s' block; annotate the function "
                    "'# halolint: locked(%s)' if the caller holds it"
                    % (self.class_node.name, node.attr, lock, lock, lock),
                    file=self.source.rel,
                    line=node.lineno,
                ))
            # fall through: still visit children (subscripts etc.)
        for child in ast.iter_child_nodes(node):
            self._scan_node(child, held)


@rule(
    id="HL002",
    name="lock-discipline",
    invariant="A self-attribute annotated '# halolint: guarded-by(L)' "
    "is only accessed inside 'with self.L', in __init__, or in a "
    "function annotated '# halolint: locked(L)'.",
    rationale="The service/server layers share state across the event "
    "loop, dispatch threads and worker pools; the PR 3-4 concurrency "
    "bugs were unguarded accesses that were safe until another layer "
    "touched the attribute from a second thread.",
)
def check(project: Project) -> Iterator[Finding]:
    for source in project.files:
        if not source.guarded_by and not source.locked:
            continue
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from _ClassScanner(source, node).scan()
