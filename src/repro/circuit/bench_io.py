"""ISCAS-85 ``.bench`` netlist reader and writer.

The ``.bench`` format is the lingua franca of the classic logic-synthesis
benchmarks::

    # comment
    INPUT(G1)
    OUTPUT(G17)
    G10 = NAND(G1, G3)
    G17 = NOT(G10)

The reader maps functions onto default-library cells, decomposing fanins
wider than the library limit into balanced trees.  ``DFF`` is rejected
explicitly: the HALOTIS reproduction is combinational (see DESIGN.md).
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..errors import ParseError
from .builder import CircuitBuilder
from .gates import MAX_LIBRARY_FANIN, cell_name_for
from .library import CellLibrary
from .logic import GateFunction
from .netlist import Net, Netlist

_FUNCTION_NAMES = {
    "AND": GateFunction.AND,
    "NAND": GateFunction.NAND,
    "OR": GateFunction.OR,
    "NOR": GateFunction.NOR,
    "XOR": GateFunction.XOR,
    "XNOR": GateFunction.XNOR,
    "NOT": GateFunction.INV,
    "INV": GateFunction.INV,
    "BUF": GateFunction.BUF,
    "BUFF": GateFunction.BUF,
}

_ASSIGN_RE = re.compile(
    r"^(?P<out>[^\s=]+)\s*=\s*(?P<func>[A-Za-z]+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^(?P<kind>INPUT|OUTPUT)\s*\((?P<name>[^)]+)\)\s*$", re.I)


def read_bench(
    source: Union[str, Path],
    library: Optional[CellLibrary] = None,
    name: Optional[str] = None,
    allow_cycles: bool = False,
) -> Netlist:
    """Parse ``.bench`` text (or a file path) into a :class:`Netlist`.

    ``allow_cycles`` relaxes the build-time ERC the same way
    ``CircuitBuilder.build(allow_cycles=True)`` does, so ``repro lint
    --allow-cycles`` can load (and report on) a cyclic bench file
    instead of dying at parse time.
    """
    if isinstance(source, Path):
        with open(source) as handle:
            text = handle.read()
        name = name or source.stem
    elif "\n" not in source and source.endswith(".bench"):
        with open(source) as handle:
            text = handle.read()
        name = name or Path(source).stem
    else:
        text = source
        name = name or "bench"

    inputs: List[str] = []
    outputs: List[str] = []
    assignments: List[Tuple[int, str, GateFunction, List[str]]] = []

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            target = inputs if io_match.group("kind").upper() == "INPUT" else outputs
            target.append(io_match.group("name").strip())
            continue
        assign_match = _ASSIGN_RE.match(line)
        if assign_match:
            func_name = assign_match.group("func").upper()
            if func_name == "DFF":
                raise ParseError(
                    "sequential element DFF is not supported (combinational "
                    "reproduction; see DESIGN.md)",
                    line_number,
                )
            if func_name not in _FUNCTION_NAMES:
                raise ParseError("unknown function %r" % func_name, line_number)
            args = [a.strip() for a in assign_match.group("args").split(",") if a.strip()]
            if not args:
                raise ParseError("gate with no inputs", line_number)
            assignments.append(
                (line_number, assign_match.group("out").strip(),
                 _FUNCTION_NAMES[func_name], args)
            )
            continue
        raise ParseError("unrecognised line %r" % raw_line.strip(), line_number)

    return _build(name, library, inputs, outputs, assignments, allow_cycles)


def _build(
    name: str,
    library: Optional[CellLibrary],
    inputs: List[str],
    outputs: List[str],
    assignments: List[Tuple[int, str, GateFunction, List[str]]],
    allow_cycles: bool = False,
) -> Netlist:
    builder = CircuitBuilder(library, name=name)
    nets: Dict[str, Net] = {}
    for input_name in inputs:
        if input_name in nets:
            raise ParseError("duplicate INPUT(%s)" % input_name)
        nets[input_name] = builder.input(input_name)

    # Declare every assigned net up front so gates may reference nets that
    # are defined later in the file (the format allows any order).
    for line_number, out_name, _func, _args in assignments:
        if out_name in nets:
            raise ParseError("net %r assigned twice" % out_name, line_number)
        nets[out_name] = builder.net(out_name)

    for line_number, out_name, function, args in assignments:
        try:
            arg_nets = [nets[arg] for arg in args]
        except KeyError as exc:
            raise ParseError(
                "gate %r references undefined net %s" % (out_name, exc), line_number
            ) from None
        _emit(builder, function, arg_nets, nets[out_name], out_name)

    for output_name in outputs:
        if output_name not in nets:
            raise ParseError("OUTPUT(%s) references undefined net" % output_name)
        builder.output(nets[output_name])
    return builder.build(allow_cycles=allow_cycles)


def _emit(
    builder: CircuitBuilder,
    function: GateFunction,
    args: List[Net],
    output: Net,
    out_name: str,
) -> None:
    """Instantiate ``function`` onto ``output``, decomposing wide fanins."""
    arity = len(args)
    if function in (GateFunction.INV, GateFunction.BUF):
        if arity != 1:
            raise ParseError("%s expects 1 input, got %d" % (function.name, arity))
        cell = "INV" if function is GateFunction.INV else "BUF"
        builder.gate(cell, args[0], output=output, name="g_%s" % out_name)
        return
    if arity == 1:
        # Single-input AND/OR/XOR degenerate to a buffer; NAND/NOR/XNOR to
        # an inverter.
        cell = "INV" if function.is_inverting else "BUF"
        builder.gate(cell, args[0], output=output, name="g_%s" % out_name)
        return
    if function in (GateFunction.XOR, GateFunction.XNOR):
        _emit_xor_chain(builder, function, args, output, out_name)
        return
    if arity <= MAX_LIBRARY_FANIN and function is GateFunction.NAND:
        builder.gate(cell_name_for(function, arity), *args, output=output,
                     name="g_%s" % out_name)
        return
    if arity <= 3 and function in (GateFunction.NOR, GateFunction.AND, GateFunction.OR):
        builder.gate(cell_name_for(function, arity), *args, output=output,
                     name="g_%s" % out_name)
        return
    _emit_tree(builder, function, args, output, out_name)


def _emit_tree(
    builder: CircuitBuilder,
    function: GateFunction,
    args: List[Net],
    output: Net,
    out_name: str,
) -> None:
    """Balanced AND2/OR2 reduction tree, inverted at the root if needed."""
    conjunctive = function in (GateFunction.AND, GateFunction.NAND)
    reduce_cell = "AND2" if conjunctive else "OR2"
    counter = 0
    level = list(args)
    while len(level) > 2:
        next_level: List[Net] = []
        for pair in range(0, len(level) - 1, 2):
            next_level.append(
                builder.gate(
                    reduce_cell, level[pair], level[pair + 1],
                    name="g_%s_t%d" % (out_name, counter),
                )
            )
            counter += 1
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    root_function = {
        GateFunction.AND: "AND2",
        GateFunction.NAND: "NAND2",
        GateFunction.OR: "OR2",
        GateFunction.NOR: "NOR2",
    }[function]
    builder.gate(root_function, level[0], level[1], output=output,
                 name="g_%s" % out_name)


def _emit_xor_chain(
    builder: CircuitBuilder,
    function: GateFunction,
    args: List[Net],
    output: Net,
    out_name: str,
) -> None:
    accumulator = args[0]
    for position, operand in enumerate(args[1:-1]):
        accumulator = builder.xor(
            accumulator, operand, name="g_%s_x%d" % (out_name, position)
        )
    root = "XOR2" if function is GateFunction.XOR else "XNOR2"
    builder.gate(root, accumulator, args[-1], output=output, name="g_%s" % out_name)


# ----------------------------------------------------------------------
# writer
# ----------------------------------------------------------------------

_WRITE_NAMES = {
    GateFunction.AND: "AND",
    GateFunction.NAND: "NAND",
    GateFunction.OR: "OR",
    GateFunction.NOR: "NOR",
    GateFunction.XOR: "XOR",
    GateFunction.XNOR: "XNOR",
    GateFunction.INV: "NOT",
    GateFunction.BUF: "BUFF",
}


def write_bench(netlist: Netlist) -> str:
    """Serialise a netlist to ``.bench`` text.

    Only gates whose function exists in the format are supported (MUX/AOI
    cells must be expanded first).  Constants are not representable in
    ``.bench`` and raise.
    """
    lines: List[str] = ["# %s — written by repro.circuit.bench_io" % netlist.name]
    for net in netlist.primary_inputs:
        lines.append("INPUT(%s)" % net.name)
    for net in netlist.primary_outputs:
        lines.append("OUTPUT(%s)" % net.name)
    for gate in netlist.topological_gates():
        function = gate.cell.function
        if function not in _WRITE_NAMES:
            raise ParseError(
                "cell %s (%s) has no .bench equivalent; expand it first"
                % (gate.cell.name, function.name)
            )
        for gate_input in gate.inputs:
            if gate_input.net.is_constant:
                raise ParseError(
                    ".bench cannot express constant net %r" % gate_input.net.name
                )
        args = ", ".join(gi.net.name for gi in gate.inputs)
        lines.append("%s = %s(%s)" % (gate.output.name, _WRITE_NAMES[function], args))
    return "\n".join(lines) + "\n"
