#!/usr/bin/env python
"""Quickstart: build a circuit, simulate it with the IDDM, read waveforms.

Run:  python examples/quickstart.py [engine_kind]

``engine_kind`` is ``reference`` (default) or ``compiled``; both
backends produce identical results (the compiled one is the fast
array-lowered kernel).

Covers the core public API in ~60 lines:

1. build a small netlist with :class:`repro.CircuitBuilder`,
2. describe a stimulus with :class:`repro.VectorSequence`,
3. simulate with HALOTIS-DDM and HALOTIS-CDM,
4. inspect statistics, waveforms and threshold-crossing events.
"""

import sys

from repro import (
    CircuitBuilder,
    ENGINE_KINDS,
    VectorSequence,
    cdm_config,
    ddm_config,
    simulate,
)
from repro.analysis.ascii_art import render_waveforms


def build_demo_circuit():
    """A NAND2 driving two inverters with different input thresholds.

    The INV_LT / INV_HT pair demonstrates the paper's central idea: each
    gate input decides for itself whether a pulse exists.
    """
    builder = CircuitBuilder(name="demo")
    a = builder.input("a")
    b = builder.input("b")
    y = builder.nand(a, b, name="g_nand")
    builder.output(y, "y")
    builder.output(builder.gate("INV_LT", y, name="g_low"), "y_low")
    builder.output(builder.gate("INV_HT", y, name="g_high"), "y_high")
    return builder.build()


def main(engine_kind="reference"):
    if engine_kind not in ENGINE_KINDS:
        raise SystemExit(
            "unknown engine kind %r (choose from %s)"
            % (engine_kind, sorted(ENGINE_KINDS))
        )
    print("engine backend: %s" % engine_kind)
    netlist = build_demo_circuit()

    # b pulses low for 0.15 ns while a is high: the NAND emits a short
    # upward glitch on y.
    stimulus = VectorSequence(
        [
            (0.0, {"a": 1, "b": 1}),
            (2.0, {"b": 0}),
            (2.15, {"b": 1}),
        ],
        slew=0.2,
        tail=3.0,
    )

    for label, config in (("DDM", ddm_config()), ("CDM", cdm_config())):
        result = simulate(
            netlist, stimulus, config=config, engine_kind=engine_kind
        )
        print("=== HALOTIS-%s ===" % label)
        print(result.stats.format())
        print()
        waveforms = {
            name: (
                result.traces[name].initial_value,
                result.traces[name].edges(),
            )
            for name in ("a", "b", "y", "y_low", "y_high")
        }
        print(render_waveforms(waveforms, 0.0, 5.0, columns=64))
        print()
        print(
            "glitch seen by low-threshold inverter : %s"
            % (result.traces["y_low"].toggle_count() > 0)
        )
        print(
            "glitch seen by high-threshold inverter: %s"
            % (result.traces["y_high"].toggle_count() > 0)
        )
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "reference")
