"""Fluent netlist construction.

``CircuitBuilder`` wraps :class:`repro.circuit.netlist.Netlist` with
auto-naming, tie-cell sharing and per-function convenience methods, so that
circuit generators read like structural HDL:

    builder = CircuitBuilder(name="demo")
    a = builder.input("a")
    b = builder.input("b")
    y = builder.nand(a, b)
    builder.output(builder.inv(y), "y")
    netlist = builder.build()
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..errors import NetlistError
from .library import CellLibrary, default_library
from .netlist import Net, Netlist
from . import validate as _validate


class CircuitBuilder:
    """Incrementally constructs a validated :class:`Netlist`."""

    def __init__(
        self,
        library: Optional[CellLibrary] = None,
        name: str = "top",
    ):
        self.library = library if library is not None else default_library()
        self.netlist = Netlist(name, vdd=self.library.vdd)
        self._net_counter = 0
        self._gate_counters: Dict[str, int] = {}
        self._ties: Dict[int, Net] = {}

    # ------------------------------------------------------------------
    # interface nets
    # ------------------------------------------------------------------

    def input(self, name: str) -> Net:
        """Declare a primary input."""
        return self.netlist.add_primary_input(name)

    def input_bus(self, prefix: str, width: int) -> List[Net]:
        """Declare ``width`` primary inputs named ``prefix0..prefix{w-1}``
        (index 0 is the least significant bit)."""
        return [self.input("%s%d" % (prefix, bit)) for bit in range(width)]

    def output(self, net: Net, name: Optional[str] = None) -> Net:
        """Mark ``net`` as a primary output, optionally renaming it."""
        if name is not None and name != net.name:
            self._rename(net, name)
        self.netlist.mark_primary_output(net)
        return net

    def output_bus(self, nets: Iterable[Net], prefix: str) -> List[Net]:
        """Mark and rename a list of nets as the bus ``prefix0..``."""
        result = []
        for bit, net in enumerate(nets):
            result.append(self.output(net, "%s%d" % (prefix, bit)))
        return result

    def constant(self, value: int) -> Net:
        """A shared tie-0 / tie-1 net."""
        if value not in self._ties:
            self._ties[value] = self.netlist.add_constant("tie%d" % value, value)
        return self._ties[value]

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------

    def net(self, name: Optional[str] = None, wire_cap: float = 0.0) -> Net:
        """Create an internal net (auto-named when ``name`` is None)."""
        if name is None:
            while True:
                name = "n%d" % self._net_counter
                self._net_counter += 1
                if name not in self.netlist.nets:
                    break
        return self.netlist.add_net(name, wire_cap=wire_cap)

    def gate(
        self,
        cell_name: str,
        *input_nets: Net,
        output: Optional[Net] = None,
        name: Optional[str] = None,
        vt_overrides: Optional[Dict[int, float]] = None,
    ) -> Net:
        """Instantiate a library cell; returns its output net."""
        cell = self.library.get(cell_name)
        if output is None:
            output = self.net()
        if name is None:
            while True:
                counter = self._gate_counters.get(cell_name, 0)
                self._gate_counters[cell_name] = counter + 1
                name = "%s_%d" % (cell_name.lower(), counter)
                if name not in self.netlist.gates:
                    break
        self.netlist.add_gate(
            name, cell, input_nets, output, vt_overrides=vt_overrides
        )
        return output

    # Convenience wrappers for the common cells. ------------------------

    def inv(self, a: Net, **kwargs) -> Net:
        return self.gate("INV", a, **kwargs)

    def buf(self, a: Net, **kwargs) -> Net:
        return self.gate("BUF", a, **kwargs)

    def nand(self, *inputs: Net, **kwargs) -> Net:
        return self.gate("NAND%d" % len(inputs), *inputs, **kwargs)

    def nor(self, *inputs: Net, **kwargs) -> Net:
        return self.gate("NOR%d" % len(inputs), *inputs, **kwargs)

    def and_(self, *inputs: Net, **kwargs) -> Net:
        return self.gate("AND%d" % len(inputs), *inputs, **kwargs)

    def or_(self, *inputs: Net, **kwargs) -> Net:
        return self.gate("OR%d" % len(inputs), *inputs, **kwargs)

    def xor(self, a: Net, b: Net, **kwargs) -> Net:
        return self.gate("XOR2", a, b, **kwargs)

    def xnor(self, a: Net, b: Net, **kwargs) -> Net:
        return self.gate("XNOR2", a, b, **kwargs)

    def mux(self, d0: Net, d1: Net, sel: Net, **kwargs) -> Net:
        return self.gate("MUX2", d0, d1, sel, **kwargs)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------

    def build(self, check: bool = True, allow_cycles: bool = False) -> Netlist:
        """Finish construction; optionally run electrical rule checks."""
        if check:
            report = _validate.check(self.netlist, allow_cycles=allow_cycles)
            report.raise_on_error()
        return self.netlist

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _rename(self, net: Net, new_name: str) -> None:
        if new_name in self.netlist.nets:
            raise NetlistError("cannot rename %r to %r: name taken" % (net.name, new_name))
        del self.netlist.nets[net.name]
        net.name = new_name
        self.netlist.nets[new_name] = net
        self.netlist._structure_version += 1
