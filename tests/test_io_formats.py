"""VCD / CSV / JSON exporters."""

import io
import json

import pytest

from repro.circuit import modules
from repro.config import ddm_config
from repro.core.engine import simulate
from repro.core.trace import TraceSet
from repro.core.transition import Transition
from repro.errors import AnalysisError
from repro.io_formats.csv_trace import write_analog_csv, write_trace_csv
from repro.io_formats.json_results import dump_results
from repro.io_formats.vcd import _identifier, write_vcd
from repro.stimuli.patterns import pulse


@pytest.fixture()
def traced_run():
    netlist = modules.inverter_chain(3)
    return simulate(netlist, pulse("in", start=1.0, width=2.0),
                    config=ddm_config())


def test_identifier_unique_and_printable():
    seen = set()
    for index in range(500):
        code = _identifier(index)
        assert code not in seen
        seen.add(code)
        assert all(33 <= ord(ch) <= 126 for ch in code)
    with pytest.raises(AnalysisError):
        _identifier(-1)


def test_vcd_structure(traced_run):
    buffer = io.StringIO()
    write_vcd(traced_run.traces, buffer, module_name="chain")
    text = buffer.getvalue()
    assert "$timescale 1 fs $end" in text
    assert "$scope module chain $end" in text
    assert text.count("$var wire 1") == len(traced_run.traces)
    assert "$dumpvars" in text
    # Change times are monotone.
    stamps = [int(line[1:]) for line in text.splitlines()
              if line.startswith("#")]
    assert stamps == sorted(stamps)
    assert stamps  # the pulse produced activity


def test_vcd_subset_and_unknown(traced_run, tmp_path):
    path = tmp_path / "out.vcd"
    write_vcd(traced_run.traces, str(path), names=["in", "out3"])
    content = path.read_text()
    assert content.count("$var") == 2
    with pytest.raises(AnalysisError):
        write_vcd(traced_run.traces, io.StringIO(), names=["missing"])


def test_vcd_accepts_plain_mapping():
    buffer = io.StringIO()
    write_vcd({"x": (0, [(1.0, 1), (2.0, 0)])}, buffer)
    text = buffer.getvalue()
    assert "#1000000" in text  # 1 ns = 1e6 fs
    assert "#2000000" in text


def test_trace_csv(traced_run):
    buffer = io.StringIO()
    write_trace_csv(traced_run.traces, buffer, names=["in", "out1"],
                    sample_step=0.5)
    lines = buffer.getvalue().strip().splitlines()
    assert lines[0] == "time_ns,in,out1"
    assert len(lines) > 5
    first = lines[1].split(",")
    assert first[1] in ("0", "1")


def test_trace_csv_requires_horizon():
    traces = TraceSet(vdd=5.0)
    traces.create("x", 0)
    with pytest.raises(AnalysisError):
        write_trace_csv(traces, io.StringIO())


def test_analog_csv(chain3):
    from repro.analog.simulator import AnalogSimulator
    from repro.stimuli.vectors import VectorSequence

    stimulus = VectorSequence([(0.0, {"in": 0})], tail=0.5)
    result = AnalogSimulator(chain3, dt=0.01).run(stimulus)
    buffer = io.StringIO()
    write_analog_csv(result, buffer, names=["in", "out1"], stride=5)
    lines = buffer.getvalue().strip().splitlines()
    assert lines[0] == "time_ns,in,out1"
    assert len(lines) >= 3


def test_json_dump_dataclasses(tmp_path, traced_run):
    path = tmp_path / "results.json"
    payload = {
        "stats": traced_run.stats,
        "values": traced_run.final_values,
        "tuple": (1, 2),
    }
    dump_results(payload, str(path))
    loaded = json.loads(path.read_text())
    assert loaded["stats"]["events_executed"] == traced_run.stats.events_executed
    assert loaded["tuple"] == [1, 2]
    assert isinstance(loaded["values"], dict)


def test_json_dump_handles_enums_and_arrays():
    import numpy as np

    from repro.config import DelayMode

    buffer = io.StringIO()
    dump_results({"mode": DelayMode.DDM, "arr": np.arange(3)}, buffer)
    loaded = json.loads(buffer.getvalue())
    assert loaded["mode"] == "ddm"
    assert loaded["arr"] == [0, 1, 2]


def test_vcd_trace_transition_roundtrip_values():
    traces = TraceSet(vdd=5.0)
    trace = traces.create("sig", 1)
    trace.append(Transition(t50=1.0, duration=0.1, rising=False,
                            net_name="sig"))
    buffer = io.StringIO()
    write_vcd(traces, buffer)
    text = buffer.getvalue()
    lines = text.splitlines()
    dump_index = lines.index("$dumpvars")
    assert lines[dump_index + 1].startswith("1")  # initial value 1
    assert any(line.startswith("0") and not line.startswith("0.")
               for line in lines[dump_index + 2:])
