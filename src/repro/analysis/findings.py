"""Shared finding/report model for every static check.

The electrical rule checks (:mod:`repro.circuit.validate`), the static
timing analyzer (:mod:`repro.analysis.sta`), the hazard pass
(:mod:`repro.analysis.hazards`) and the project linter
(``tools/halolint``) all report through one :class:`Finding` type, so
``repro lint`` can merge them into a single :class:`FindingReport` with
one exit-code contract (errors → 2, warnings → 0 unless ``--strict``)
and one JSON schema.

Circuit checks locate a finding with ``net``/``gate``; source-code
checks locate it with ``file``/``line`` instead.  Both kinds share the
severity contract and the JSON shape.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Iterable, List, Optional

from ..errors import NetlistError


class Severity(enum.Enum):
    """How bad a finding is; errors fail ``raise_on_error`` and lint."""

    WARNING = "warning"
    ERROR = "error"


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation or notable static-analysis fact.

    ``net``/``gate`` locate the finding in the circuit when a single
    object is responsible; ``file``/``line`` locate it in source code
    (the ``tools/halolint`` rules); ``data`` carries rule-specific
    numbers (path skew, arrival bounds, ...) for the JSON output.
    """

    severity: Severity
    rule: str
    message: str
    net: Optional[str] = None
    gate: Optional[str] = None
    data: Optional[Dict[str, object]] = None
    file: Optional[str] = None
    line: Optional[int] = None

    def __str__(self) -> str:
        location = ""
        if self.file is not None:
            location = self.file
            if self.line is not None:
                location += ":%d" % self.line
            location += ": "
        return "%s[%s] %s: %s" % (
            location, self.severity.value, self.rule, self.message
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready primitive form (stable key order)."""
        payload: Dict[str, object] = {
            "severity": self.severity.value,
            "rule": self.rule,
            "message": self.message,
        }
        if self.net is not None:
            payload["net"] = self.net
        if self.gate is not None:
            payload["gate"] = self.gate
        if self.file is not None:
            payload["file"] = self.file
        if self.line is not None:
            payload["line"] = self.line
        if self.data is not None:
            payload["data"] = dict(self.data)
        return payload


@dataclasses.dataclass
class FindingReport:
    """A list of findings plus the shared severity/exit-code contract."""

    findings: List[Finding] = dataclasses.field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_on_error(self) -> None:
        if self.errors:
            details = "; ".join(str(f) for f in self.errors[:10])
            raise NetlistError(
                "netlist validation failed (%d errors): %s"
                % (len(self.errors), details)
            )

    def _add(
        self,
        severity: Severity,
        rule: str,
        message: str,
        net: Optional[str] = None,
        gate: Optional[str] = None,
        data: Optional[Dict[str, object]] = None,
    ) -> None:
        self.findings.append(Finding(severity, rule, message, net, gate, data))

    def extend(self, findings: Iterable[Finding]) -> FindingReport:
        """Append findings (e.g. merge ERC + hazard passes); returns self."""
        self.findings.extend(findings)
        return self

    def exit_code(self, strict: bool = False) -> int:
        """The lint exit-code contract: errors → 2, warnings → 0 unless
        ``strict`` promotes them, clean → 0."""
        if self.errors:
            return 2
        if strict and self.warnings:
            return 2
        return 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def format(self) -> str:
        """Human-readable one-line-per-finding rendering."""
        if not self.findings:
            return "no findings"
        lines = [str(finding) for finding in self.findings]
        lines.append(
            "%d error(s), %d warning(s)"
            % (len(self.errors), len(self.warnings))
        )
        return "\n".join(lines)
