"""Shared fixtures and hypothesis configuration."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.circuit import modules
from repro.circuit.library import default_library

# One moderate profile for all property tests: the engine fixtures are
# cheap but not free, and CI determinism matters more than example count.
settings.register_profile(
    "repro",
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def library():
    """The shared default cell library (immutable)."""
    return default_library()


@pytest.fixture(scope="session")
def mult4():
    """The Figure 5 4x4 multiplier (shared; never mutated by simulators)."""
    return modules.array_multiplier(4)


@pytest.fixture(scope="session")
def c17():
    return modules.c17()


@pytest.fixture()
def chain3():
    return modules.inverter_chain(3)
