"""HL005 — public exception contract.

``repro.errors`` defines the project's error family (``ReproError`` /
``SimulationError`` and friends) so callers can catch one hierarchy.
A public entry point that raises a bare builtin (``ValueError``,
``RuntimeError``, ...) leaks an undocumented exception type past every
``except SimulationError`` in the service, campaign and CLI layers —
the PR 6 campaign classifier only stays honest because engine failures
arrive as the repro family.

Flagged: ``raise <Builtin>(...)`` / ``raise <Builtin>`` reachable from
a public context — no ``_name`` (non-dunder) function or class on the
lexical nesting chain.  Exempt:

* private helpers (callers wrap at the boundary),
* dunder methods (``__getitem__`` raising ``KeyError`` etc. is the
  language protocol, not this project's API),
* re-raising a caught object (``raise err``), bare ``raise``,
* control-flow builtins (``StopIteration``, ``NotImplementedError``,
  ``SystemExit``, ...).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.findings import Finding, Severity

from ..engine import Project, SourceFile
from ..registry import rule

#: Builtin exception types a public repro API must not raise directly.
FORBIDDEN_BUILTINS: Set[str] = {
    "ArithmeticError", "AssertionError", "AttributeError",
    "BaseException", "BrokenPipeError", "BufferError",
    "ConnectionError", "ConnectionResetError", "EOFError", "Exception",
    "FileExistsError", "FileNotFoundError", "IOError", "IndexError",
    "IsADirectoryError", "KeyError", "LookupError", "MemoryError",
    "NotADirectoryError", "OSError", "OverflowError",
    "PermissionError", "RecursionError", "ReferenceError",
    "RuntimeError", "TimeoutError", "TypeError", "UnicodeDecodeError",
    "UnicodeEncodeError", "ValueError", "ZeroDivisionError",
}


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _is_private(name: str) -> bool:
    return name.startswith("_") and not _is_dunder(name)


def _raised_builtin(node: ast.Raise) -> tuple[str, bool] | None:
    """(builtin name, is_call) when the raise targets a forbidden
    builtin, else None."""
    exc = node.exc
    if exc is None:  # bare re-raise
        return None
    if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
        name = exc.func.id
        if name in FORBIDDEN_BUILTINS:
            return name, True
        return None
    if isinstance(exc, ast.Name) and exc.id in FORBIDDEN_BUILTINS:
        return exc.id, False
    return None


def _scan(source: SourceFile) -> List[Finding]:
    findings: List[Finding] = []

    def visit(node: ast.AST, public: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                child_public = public and not _is_private(child.name)
                if (
                    isinstance(child, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))
                    and _is_dunder(child.name)
                ):
                    # Language-protocol contract, not project API.
                    continue
                visit(child, child_public)
                continue
            if isinstance(child, ast.Raise):
                hit = _raised_builtin(child)
                if hit is not None and public:
                    findings.append(Finding(
                        severity=Severity.ERROR,
                        rule="HL005",
                        message="public API raises builtin %s; raise a "
                        "repro error (SimulationError family / "
                        "ReproError) so callers can catch one "
                        "hierarchy" % hit[0],
                        file=source.rel,
                        line=child.lineno,
                    ))
            visit(child, public)

    visit(source.tree, True)
    return findings


@rule(
    id="HL005",
    name="exception-contract",
    invariant="Public repro.* entry points raise only the "
    "ReproError/SimulationError family, never bare builtin exceptions.",
    rationale="The service, campaign and oracle layers catch the repro "
    "hierarchy at their boundaries; a bare ValueError from a public "
    "path bypasses them all and surfaces as an unclassified crash.",
)
def check(project: Project) -> Iterator[Finding]:
    for source in project.files:
        if source.rel.endswith("errors.py"):
            continue  # the hierarchy's own module bootstraps itself
        yield from _scan(source)
