"""JSON export of experiment results.

Experiment drivers return dataclasses; this serialiser turns them (and
the statistics objects they embed) into plain JSON for archiving runs,
e.g. ``halotis experiment table1 --json out.json``.
"""

from __future__ import annotations

import dataclasses
import io
import json
from enum import Enum
from typing import Any, Union


def _plain(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _plain(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):  # numpy scalars/arrays
        return value.tolist()
    return repr(value)


def dump_results(results: Any, output: Union[str, io.TextIOBase]) -> None:
    """Serialise ``results`` (dataclass / dict / list tree) as JSON."""
    payload = _plain(results)
    own_handle = isinstance(output, str)
    handle = open(output, "w") if own_handle else output
    try:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    finally:
        if own_handle:
            handle.close()
