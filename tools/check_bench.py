"""Validator for the shared ``BENCH_*.json`` benchmark artifact schema.

Every benchmark that feeds the performance trajectory attaches one
record at ``benchmarks[].extra_info.bench`` via the ``bench_record``
fixture (``benchmarks/conftest.py``)::

    {"schema": 1, "name": "vector-speedup",
     "config": {...workload knobs...},
     "measured": {...numbers the gate asserted on...}}

This tool checks every record in one or more pytest-benchmark JSON
artifacts: ``schema`` matches, ``name`` is a non-empty string, ``config``
is a JSON object of scalars, and every ``measured`` value is a finite
number (that is what trajectory tooling plots).  Benchmarks without a
``bench`` record are reported (``--require-all`` turns them into
failures for the gated speedup suites).

``--stamp`` post-processes each artifact in place, injecting a
top-level ``bench_stamp`` object with the capture timestamp and commit
SHA — CI owns provenance, not the benchmark process::

    python tools/check_bench.py BENCH_*.json --stamp --sha "$GITHUB_SHA"

Exit status is non-zero when any record is malformed (or, with
``--require-all``, missing).
"""

from __future__ import annotations

import argparse
import datetime
import json
import math
import subprocess
import sys
from pathlib import Path
from typing import Any, List, Tuple

#: Must match ``benchmarks/conftest.py:BENCH_RECORD_SCHEMA``.
EXPECTED_SCHEMA = 1

_SCALAR_TYPES = (str, int, float, bool, type(None))


def _is_number(value: Any) -> bool:
    if isinstance(value, bool):
        return False
    return isinstance(value, (int, float)) and math.isfinite(value)


def check_record(record: Any) -> List[str]:
    """Return the list of problems with one ``bench`` record."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return ["bench record is %s, not an object" % type(record).__name__]
    if record.get("schema") != EXPECTED_SCHEMA:
        problems.append(
            "schema %r != expected %d" % (record.get("schema"), EXPECTED_SCHEMA)
        )
    name = record.get("name")
    if not isinstance(name, str) or not name:
        problems.append("name %r is not a non-empty string" % (name,))
    config = record.get("config")
    if not isinstance(config, dict):
        problems.append("config is not an object")
    else:
        for key, value in config.items():
            if not isinstance(value, _SCALAR_TYPES):
                problems.append(
                    "config[%r] is %s, not a JSON scalar"
                    % (key, type(value).__name__)
                )
    measured = record.get("measured")
    if not isinstance(measured, dict):
        problems.append("measured is not an object")
    else:
        for key, value in measured.items():
            if not _is_number(value):
                problems.append(
                    "measured[%r] = %r is not a finite number" % (key, value)
                )
    extra = sorted(set(record) - {"schema", "name", "config", "measured"})
    if extra:
        problems.append("unexpected keys: %s" % ", ".join(extra))
    return problems


def check_artifact(path: Path, require_all: bool) -> Tuple[int, int, int]:
    """Validate one artifact; returns (records, missing, broken)."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print("BROKEN %s: unreadable (%s)" % (path, error), file=sys.stderr)
        return 0, 0, 1
    entries = document.get("benchmarks")
    if not isinstance(entries, list):
        print(
            "BROKEN %s: no benchmarks[] array (not a pytest-benchmark "
            "artifact?)" % path,
            file=sys.stderr,
        )
        return 0, 0, 1
    records = missing = broken = 0
    for entry in entries:
        bench_name = entry.get("name", "<unnamed>")
        record = (entry.get("extra_info") or {}).get("bench")
        if record is None:
            missing += 1
            stream = sys.stderr if require_all else sys.stdout
            print(
                "%s %s: %s has no bench record"
                % ("BROKEN" if require_all else "note", path.name, bench_name),
                file=stream,
            )
            continue
        records += 1
        for problem in check_record(record):
            broken += 1
            print(
                "BROKEN %s: %s: %s" % (path.name, bench_name, problem),
                file=sys.stderr,
            )
    return records, missing, broken


def _resolve_sha(explicit: str) -> str:
    if explicit:
        return explicit
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def stamp_artifact(path: Path, sha: str, timestamp: str) -> None:
    """Inject provenance (in place) without touching the records."""
    document = json.loads(path.read_text(encoding="utf-8"))
    document["bench_stamp"] = {
        "schema": EXPECTED_SCHEMA,
        "timestamp": timestamp,
        "sha": sha,
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate BENCH_*.json bench records (and stamp "
        "provenance)"
    )
    parser.add_argument("artifacts", nargs="+", type=Path,
                        help="pytest-benchmark JSON files")
    parser.add_argument("--require-all", action="store_true",
                        help="fail when a benchmark has no bench record")
    parser.add_argument("--stamp", action="store_true",
                        help="inject bench_stamp {timestamp, sha} in place")
    parser.add_argument("--sha", default="",
                        help="commit sha for --stamp (default: git HEAD)")
    args = parser.parse_args(argv)

    total_records = total_missing = total_broken = 0
    for path in args.artifacts:
        records, missing, broken = check_artifact(path, args.require_all)
        total_records += records
        total_missing += missing
        total_broken += broken
    if args.stamp and not total_broken:
        sha = _resolve_sha(args.sha)
        timestamp = datetime.datetime.now(datetime.timezone.utc).isoformat()
        for path in args.artifacts:
            stamp_artifact(path, sha, timestamp)
    print(
        "%d bench records checked across %d artifacts: %d broken, "
        "%d benchmarks without a record"
        % (total_records, len(args.artifacts), total_broken, total_missing)
    )
    if total_broken or (args.require_all and total_missing):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
