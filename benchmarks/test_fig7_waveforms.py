"""Paper Figure 7 — multiplier waveforms, sequence 0x0, FxF, 0x0, FxF, 0x0.

Same claims as Figure 6 on the all-ones alternating stimulus, which
maximises simultaneous switching (the paper's stress sequence: it shows
the largest CDM overestimation).
"""

import pytest

from repro.analysis.compare import match_edges
from repro.config import DelayMode
from repro.experiments import common

WHICH = 2


@pytest.fixture(scope="module")
def runs(analog_run_seq2):
    ddm = common.run_halotis(WHICH, DelayMode.DDM)
    cdm = common.run_halotis(WHICH, DelayMode.CDM)
    return analog_run_seq2, ddm, cdm


@pytest.mark.analog
def test_fig7_settled_words(benchmark, runs):
    analog, ddm, cdm = runs
    benchmark(common.run_halotis, WHICH, DelayMode.DDM)
    expected = common.expected_words(WHICH)
    assert common.settled_words_logic(ddm, WHICH) == expected
    assert common.settled_words_logic(cdm, WHICH) == expected
    assert common.settled_words_analog(analog, WHICH) == expected


@pytest.mark.analog
def test_fig7_activity_shape(benchmark, runs):
    analog, ddm, cdm = runs
    benchmark(common.run_halotis, WHICH, DelayMode.CDM)
    outputs = common.output_nets()
    analog_edges = sum(
        len(analog.waveform(name).digitize()) for name in outputs
    )
    ddm_edges = sum(ddm.traces[n].toggle_count() for n in outputs)
    cdm_edges = sum(cdm.traces[n].toggle_count() for n in outputs)
    print(
        "\nFig7 output edges: analog=%d DDM=%d CDM=%d"
        % (analog_edges, ddm_edges, cdm_edges)
    )
    assert abs(ddm_edges - analog_edges) <= 0.25 * analog_edges
    assert cdm_edges >= 1.8 * ddm_edges, (
        "the stress sequence shows the largest glitch forest under CDM"
    )


@pytest.mark.analog
def test_fig7_edge_agreement(benchmark, runs):
    analog, ddm, _cdm = runs

    def agreement():
        scores = []
        for name in common.output_nets():
            outcome = match_edges(
                ddm.traces[name].edges(),
                analog.waveform(name).digitize(),
                tolerance=0.5,
            )
            scores.append(outcome.agreement)
        return sum(scores) / len(scores)

    mean_agreement = benchmark(agreement)
    print("\nFig7 mean DDM-vs-analog edge agreement: %.2f" % mean_agreement)
    assert mean_agreement >= 0.70
