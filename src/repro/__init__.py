"""HALOTIS reproduction: high-accuracy logic timing simulation.

A from-scratch Python implementation of the system described in

    P. Ruiz de Clavijo, J. Juan-Chico, M.J. Bellido, A. Acosta,
    M. Valencia — "HALOTIS: High Accuracy LOgic TIming Simulator with
    inertial and degradation delay model", DATE 2001

plus every substrate its evaluation depends on: a gate-level netlist
layer with a characterised 0.6 um-like cell library, a transistor-level
transient simulator standing in for HSPICE, a classical inertial-delay
baseline, and drivers regenerating every table and figure of the paper.

Quick start::

    from repro import (array_multiplier, multiplication_sequence,
                       simulate, ddm_config)

    netlist = array_multiplier(4)
    stimulus = multiplication_sequence([(0x0, 0x0), (0x7, 0x7)])
    result = simulate(netlist, stimulus, config=ddm_config())
    print(result.stats.format())
    print(result.traces.word_at(9.9, "s", 8))   # -> 49

See README.md for the architecture overview and DESIGN.md for the
paper-to-module map.
"""

from .config import (
    DelayMode,
    InertialPolicy,
    SimulationConfig,
    cdm_config,
    ddm_config,
)
from .circuit.builder import CircuitBuilder
from .circuit.library import CellLibrary, default_library
from .circuit.modules import (
    array_multiplier,
    fig1_circuit,
    inverter_chain,
    ripple_adder,
)
from .circuit.netlist import Netlist
from .core.engine import (
    ENGINE_KINDS,
    EngineBase,
    HalotisSimulator,
    SimulationResult,
    make_engine,
    run_stimulus,
    simulate,
)
from .core.compiled import CompiledNetlist, CompiledSimulator
from .core.vector import VectorSimulator
from .core.batch import BatchResult, simulate_batch
from .core.service import BatchJob, SimulationService
from .core.cdm import ConventionalDelayModel
from .core.ddm import DegradationDelayModel
from .stimuli.vectors import (
    PAPER_SEQUENCE_1,
    PAPER_SEQUENCE_2,
    VectorSequence,
    multiplication_sequence,
)
from .faults.campaign import DependabilityReport, run_campaign
from .faults.faultload import (
    FaultKind,
    FaultSpec,
    Faultload,
    generate_faultload,
)
from .faults.inject import FaultedStimulus

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "DelayMode",
    "InertialPolicy",
    "SimulationConfig",
    "ddm_config",
    "cdm_config",
    "CircuitBuilder",
    "CellLibrary",
    "default_library",
    "Netlist",
    "array_multiplier",
    "fig1_circuit",
    "inverter_chain",
    "ripple_adder",
    "ENGINE_KINDS",
    "EngineBase",
    "HalotisSimulator",
    "CompiledNetlist",
    "CompiledSimulator",
    "VectorSimulator",
    "SimulationResult",
    "BatchResult",
    "BatchJob",
    "SimulationService",
    "make_engine",
    "run_stimulus",
    "simulate",
    "simulate_batch",
    "DegradationDelayModel",
    "ConventionalDelayModel",
    "VectorSequence",
    "multiplication_sequence",
    "PAPER_SEQUENCE_1",
    "PAPER_SEQUENCE_2",
    "DependabilityReport",
    "FaultKind",
    "FaultSpec",
    "Faultload",
    "FaultedStimulus",
    "generate_faultload",
    "run_campaign",
]
