r"""ASCII waveform rendering.

Renders digital edge lists as fixed-width text waveforms, one row per
net — the format used to reproduce the paper's Figures 1, 6 and 7 in a
terminal::

    s3  ____/~~~~\____/~~~~~~~~
    s2  ________/~~~~\__________

Low is ``_``, high is ``~``, an edge is ``/`` or ``\``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AnalysisError

Edge = Tuple[float, int]

LOW_CHAR = "_"
HIGH_CHAR = "~"
RISE_CHAR = "/"
FALL_CHAR = "\\"


def render_edges(
    edges: Sequence[Edge],
    initial_value: int,
    t_start: float,
    t_end: float,
    columns: int,
) -> str:
    """One net's waveform as a ``columns``-character string."""
    if columns < 2:
        raise AnalysisError("need at least two columns")
    if t_end <= t_start:
        raise AnalysisError("empty time window")
    step = (t_end - t_start) / columns
    characters: List[str] = []
    value = initial_value
    cursor = 0
    edge_list = sorted(edges)
    for column in range(columns):
        cell_start = t_start + column * step
        cell_end = cell_start + step
        toggled = False
        while cursor < len(edge_list) and edge_list[cursor][0] < cell_end:
            if edge_list[cursor][0] >= cell_start:
                value = edge_list[cursor][1]
                toggled = True
            elif column == 0:
                # Edges before the window set the starting level.
                value = edge_list[cursor][1]
            cursor += 1
        if toggled:
            characters.append(RISE_CHAR if value == 1 else FALL_CHAR)
        else:
            characters.append(HIGH_CHAR if value == 1 else LOW_CHAR)
    return "".join(characters)


def render_waveforms(
    waveforms: Dict[str, Tuple[int, Sequence[Edge]]],
    t_start: float,
    t_end: float,
    columns: int = 72,
    order: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render several nets stacked, with a time axis.

    Args:
        waveforms: ``name -> (initial_value, edges)``.
        order: display order (default: insertion order).
    """
    names = list(order) if order is not None else list(waveforms)
    width = max((len(name) for name in names), default=0)
    lines: List[str] = []
    if title:
        lines.append(title)
    for name in names:
        initial_value, edges = waveforms[name]
        body = render_edges(edges, initial_value, t_start, t_end, columns)
        lines.append("%-*s %s" % (width, name, body))
    axis = _time_axis(t_start, t_end, columns)
    lines.append("%-*s %s" % (width, "", axis[0]))
    lines.append("%-*s %s" % (width, "t/ns", axis[1]))
    return "\n".join(lines)


def _time_axis(t_start: float, t_end: float, columns: int) -> Tuple[str, str]:
    """Tick row and label row for the time axis."""
    tick_row = ["-"] * columns
    label_row = [" "] * columns
    tick_count = 6
    for tick in range(tick_count):
        column = int(round(tick * (columns - 1) / (tick_count - 1)))
        tick_row[column] = "+"
        label = "%g" % (t_start + (t_end - t_start) * tick / (tick_count - 1))
        for offset, char in enumerate(label):
            position = column + offset
            if position < columns:
                label_row[position] = char
    return "".join(tick_row), "".join(label_row)


def render_bus(
    values: Sequence[int],
    sample_times: Sequence[float],
    label: str = "bus",
    hex_digits: int = 2,
) -> str:
    """Render sampled bus words as a compact annotation row."""
    if len(values) != len(sample_times):
        raise AnalysisError("values and sample_times must align")
    cells = [
        "%g:%0*X" % (t, hex_digits, v) for t, v in zip(sample_times, values)
    ]
    return "%s  %s" % (label, "  ".join(cells))
