"""Structured logging for the repro stack.

Plain stdlib ``logging`` underneath — the only additions are a JSON
formatter (one object per line, stable keys, ``extra`` fields surfaced)
and one place (:func:`configure_logging`) where the CLI's
``--log-level`` / ``--log-json`` flags land.  Libraries call
:func:`get_logger` and log with ``extra={...}`` context; they never
configure handlers themselves, so embedding the package in another
application keeps working.

The previously *silent* failure paths — service worker crash respawns,
task requeues, retry-budget exhaustion — log through here (logger
``repro.service``) alongside their new counters.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import Optional, TextIO

__all__ = ["JsonLogFormatter", "configure_logging", "get_logger"]

ROOT_LOGGER_NAME = "repro"

#: ``LogRecord`` attributes that are plumbing, not caller-supplied
#: context.  Anything on a record beyond these came in via ``extra=``
#: and belongs in the JSON payload.
_RESERVED = frozenset(
    (
        "name", "msg", "args", "levelname", "levelno", "pathname",
        "filename", "module", "exc_info", "exc_text", "stack_info",
        "lineno", "funcName", "created", "msecs", "relativeCreated",
        "thread", "threadName", "processName", "process", "message",
        "taskName", "asctime",
    )
)


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, msg, extras."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=False)


class _TextFormatter(logging.Formatter):
    """Human format mirroring the JSON keys: time level logger msg k=v."""

    converter = time.localtime

    def format(self, record: logging.LogRecord) -> str:
        base = "%s %-7s %s: %s" % (
            self.formatTime(record, "%H:%M:%S"),
            record.levelname.lower(),
            record.name,
            record.getMessage(),
        )
        extras = [
            "%s=%r" % (key, value)
            for key, value in sorted(record.__dict__.items())
            if key not in _RESERVED and not key.startswith("_")
        ]
        if extras:
            base += " " + " ".join(extras)
        if record.exc_info and record.exc_info[0] is not None:
            base += "\n" + self.formatException(record.exc_info)
        return base


def configure_logging(
    level: str = "warning",
    json_mode: bool = False,
    stream: Optional[TextIO] = None,
) -> logging.Logger:
    """(Re)configure the ``repro`` logger tree; returns the root logger.

    Idempotent — repeated calls replace the handler rather than stack
    duplicates, so tests and the CLI can call it freely.  Only the
    ``repro`` subtree is touched; the process root logger is left alone.
    """
    numeric = logging.getLevelName(level.upper())
    if not isinstance(numeric, int):
        raise ValueError("unknown log level: %r" % level)
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    logger.setLevel(numeric)
    logger.propagate = False
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_mode else _TextFormatter())
    for existing in list(logger.handlers):
        logger.removeHandler(existing)
    logger.addHandler(handler)
    return logger


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """A logger under the ``repro`` tree (``repro.<name>``)."""
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name.startswith(ROOT_LOGGER_NAME + ".") or name == ROOT_LOGGER_NAME:
        return logging.getLogger(name)
    return logging.getLogger(ROOT_LOGGER_NAME + "." + name)
