"""Analog waveform analysis.

:class:`AnalogWaveform` wraps one node's sampled voltage trace and
provides the measurements the experiments need: threshold crossings,
50%-50% delays, 10%-90% transition times, digitisation with hysteresis
(for comparing against logic-simulator edge lists) and windowed extrema
(for runt-pulse peaks).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import AnalysisError

Edge = Tuple[float, int]


class AnalogWaveform:
    """One node's voltage as a sampled function of time."""

    def __init__(self, times: np.ndarray, values: np.ndarray, vdd: float,
                 name: str = ""):
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.ndim != 1 or times.shape != values.shape:
            raise AnalysisError("times and values must be equal-length 1-D arrays")
        if len(times) < 2:
            raise AnalysisError("waveform needs at least two samples")
        self.times = times
        self.values = values
        self.vdd = vdd
        self.name = name

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------

    def value_at(self, time: float) -> float:
        """Linearly interpolated voltage at ``time``."""
        return float(np.interp(time, self.times, self.values))

    def window(self, t_start: float, t_end: float) -> AnalogWaveform:
        """Sub-waveform restricted to ``[t_start, t_end]``."""
        mask = (self.times >= t_start) & (self.times <= t_end)
        if mask.sum() < 2:
            raise AnalysisError("window too narrow for the sampling step")
        return AnalogWaveform(
            self.times[mask], self.values[mask], self.vdd, self.name
        )

    def extreme(self, t_start: float, t_end: float, maximum: bool = True) -> float:
        """Max (or min) voltage within a window — runt-pulse peak probing."""
        sub = self.window(t_start, t_end)
        return float(sub.values.max() if maximum else sub.values.min())

    # ------------------------------------------------------------------
    # crossings and digitisation
    # ------------------------------------------------------------------

    def crossing_times(
        self,
        level: float,
        rising: Optional[bool] = None,
    ) -> List[float]:
        """Times where the waveform crosses ``level`` (linear interp).

        ``rising=True`` keeps upward crossings only, ``False`` downward,
        None both.
        """
        above = self.values >= level
        flips = np.nonzero(above[1:] != above[:-1])[0]
        crossings: List[float] = []
        for index in flips:
            upward = above[index + 1]
            if rising is not None and upward != rising:
                continue
            v0, v1 = self.values[index], self.values[index + 1]
            t0, t1 = self.times[index], self.times[index + 1]
            fraction = (level - v0) / (v1 - v0)
            crossings.append(float(t0 + fraction * (t1 - t0)))
        return crossings

    def digitize(
        self,
        threshold: Optional[float] = None,
        hysteresis_fraction: float = 0.1,
    ) -> List[Edge]:
        """Digital edge list via a hysteresis comparator.

        A rising edge is registered when the waveform exceeds
        ``threshold + h`` after having been below ``threshold - h`` (and
        symmetrically for falling), which ignores sub-hysteresis wiggles
        the way a real receiver would.  Returns ``(time, new_value)``
        pairs; the crossing time reported is the mid-threshold crossing.
        """
        if threshold is None:
            threshold = self.vdd / 2.0
        band = hysteresis_fraction * self.vdd
        high_level = threshold + band
        low_level = threshold - band
        state = 1 if self.values[0] >= threshold else 0
        edges: List[Edge] = []
        pending_cross: Optional[float] = None
        for index in range(1, len(self.times)):
            voltage = self.values[index]
            previous = self.values[index - 1]
            if state == 0:
                if pending_cross is None and previous < threshold <= voltage:
                    fraction = (threshold - previous) / (voltage - previous)
                    pending_cross = float(
                        self.times[index - 1]
                        + fraction * (self.times[index] - self.times[index - 1])
                    )
                if voltage >= high_level and pending_cross is not None:
                    edges.append((pending_cross, 1))
                    state = 1
                    pending_cross = None
                elif voltage < low_level:
                    pending_cross = None
            else:
                if pending_cross is None and previous > threshold >= voltage:
                    fraction = (previous - threshold) / (previous - voltage)
                    pending_cross = float(
                        self.times[index - 1]
                        + fraction * (self.times[index] - self.times[index - 1])
                    )
                if voltage <= low_level and pending_cross is not None:
                    edges.append((pending_cross, 0))
                    state = 0
                    pending_cross = None
                elif voltage > high_level:
                    pending_cross = None
        return edges

    def initial_value(self, threshold: Optional[float] = None) -> int:
        if threshold is None:
            threshold = self.vdd / 2.0
        return 1 if self.values[0] >= threshold else 0

    def value_digital_at(self, time: float, threshold: Optional[float] = None) -> int:
        """Digital value at ``time`` per the hysteresis digitisation."""
        value = self.initial_value(threshold)
        for edge_time, edge_value in self.digitize(threshold):
            if edge_time > time:
                break
            value = edge_value
        return value

    # ------------------------------------------------------------------
    # measurements
    # ------------------------------------------------------------------

    def transition_time(
        self,
        around: float,
        rising: bool,
        low_fraction: float = 0.1,
        high_fraction: float = 0.9,
    ) -> float:
        """Full-swing-equivalent transition time of the edge nearest
        ``around``: the 10%-90% span scaled to 0%-100%."""
        low_level = low_fraction * self.vdd
        high_level = high_fraction * self.vdd
        lows = self.crossing_times(low_level, rising=rising)
        highs = self.crossing_times(high_level, rising=rising)
        if not lows or not highs:
            raise AnalysisError(
                "no full %s edge found near t=%.3f on %s"
                % ("rising" if rising else "falling", around, self.name)
            )
        low_time = min(lows, key=lambda t: abs(t - around))
        high_time = min(highs, key=lambda t: abs(t - around))
        span = (high_time - low_time) if rising else (low_time - high_time)
        if span <= 0.0:
            raise AnalysisError("inconsistent edge around t=%.3f" % around)
        return span / (high_fraction - low_fraction)


def delay_between(
    cause: AnalogWaveform,
    effect: AnalogWaveform,
    cause_time: float,
    effect_rising: bool,
    level_fraction: float = 0.5,
) -> float:
    """50%-50% propagation delay: first crossing of ``effect`` after
    ``cause_time`` minus ``cause_time``.

    ``cause_time`` should itself be a mid-swing crossing instant of the
    causing edge (measured by the caller), which keeps the convention
    identical to the logic engine's 50%-50% delays.
    """
    level = level_fraction * effect.vdd
    candidates = [
        t for t in effect.crossing_times(level, rising=effect_rising)
        if t >= cause_time
    ]
    if not candidates:
        raise AnalysisError(
            "no %s crossing on %s after t=%.3f"
            % ("rising" if effect_rising else "falling", effect.name, cause_time)
        )
    return candidates[0] - cause_time
