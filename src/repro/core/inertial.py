"""Per-input inertial (pulse filtering) policies.

The paper relocates the inertial effect from gate outputs to gate inputs:
when a new event ``Ej`` is computed for an input whose latest pending
event is ``Ej-1``, the kernel must decide whether the pulse bounded by the
two underlying transitions actually crosses the input's threshold.

Two policies are provided:

* ``EVENT_ORDER`` — the rule exactly as published (paper Figure 4):
  annihilate unless ``Ej`` comes after ``Ej-1``.  Under the full-swing
  ramp extrapolation this slightly over-filters very asymmetric-slope
  pulses, but it needs nothing beyond the two event times.
* ``PEAK_VOLTAGE`` — reconstructs the actual pulse peak from the two
  ramps and annihilates only when the peak fails to reach the threshold;
  when the pulse survives, the second crossing time is corrected for the
  partial swing.  This is the physically exact rule under the linear-ramp
  approximation and serves as the ``ablA`` ablation.
"""

from __future__ import annotations

import dataclasses

from ..config import InertialPolicy
from .events import Event
from .transition import Transition


@dataclasses.dataclass(frozen=True)
class InertialDecision:
    """Outcome of the per-input filtering decision.

    Attributes:
        annihilate: True — remove ``Ej-1`` and do not insert ``Ej``.
        event_time: when not annihilating, the (possibly corrected) time
            at which the new event should be scheduled.
    """

    annihilate: bool
    event_time: float = 0.0


def decide(
    policy: InertialPolicy,
    new_time: float,
    previous: Event,
    transition: Transition,
    threshold_fraction: float,
    resolution: float,
) -> InertialDecision:
    """Apply ``policy`` to a new crossing at ``new_time`` against the
    input's pending event ``previous``.

    Args:
        new_time: nominal crossing time of the new transition with the
            input threshold (full-swing extrapolation).
        previous: the input's latest pending (not yet executed) event.
        transition: the transition producing the new event.
        threshold_fraction: the input's VT as a fraction of VDD.
        resolution: times closer than this count as simultaneous.
    """
    if policy is InertialPolicy.EVENT_ORDER:
        if new_time <= previous.time + resolution:
            return InertialDecision(annihilate=True)
        return InertialDecision(annihilate=False, event_time=new_time)

    if policy is InertialPolicy.PEAK_VOLTAGE:
        return _decide_peak(new_time, previous, transition, threshold_fraction, resolution)

    raise ValueError("unknown inertial policy %r" % (policy,))


def _decide_peak(
    new_time: float,
    previous: Event,
    transition: Transition,
    threshold_fraction: float,
    resolution: float,
) -> InertialDecision:
    """Peak-voltage rule; see module docstring.

    The pulse is bounded by ``previous.transition`` (leading ramp) and
    ``transition`` (trailing, opposite ramp).  The leading ramp reaches a
    progress ``p`` of its swing before the trailing ramp takes over; in
    threshold terms the pulse crossed the input's VT iff ``p`` exceeds the
    threshold progress (VT measured along the leading ramp's direction).
    """
    leading = previous.transition
    if leading.rising == transition.rising:
        # Same-direction transitions cannot bound a pulse; fall back to
        # the event-order rule (can only arise from exotic hand-built
        # stimuli, never from the kernel's alternating emissions).
        if new_time <= previous.time + resolution:
            return InertialDecision(annihilate=True)
        return InertialDecision(annihilate=False, event_time=new_time)

    peak_progress = leading.pulse_peak_fraction(transition)
    threshold_progress = (
        threshold_fraction if leading.rising else 1.0 - threshold_fraction
    )
    if peak_progress <= threshold_progress:
        return InertialDecision(annihilate=True)

    # The pulse survives.  The trailing ramp really starts from the
    # partial peak, not from the rail, so its threshold crossing happens
    # earlier than the full-swing extrapolation by (1 - p) * duration.
    corrected = new_time - (1.0 - peak_progress) * transition.duration
    corrected = max(corrected, previous.time + resolution)
    return InertialDecision(annihilate=False, event_time=corrected)
