"""Zero-delay functional evaluation of netlists.

Used for DC initialisation of the timing simulators and for exhaustive
functional tests (e.g. checking the Figure 5 multiplier against integer
multiplication for all 256 input pairs).

Acyclic netlists are evaluated in topological order.  Cyclic netlists
(latches, ring oscillators) fall back to Gauss–Seidel relaxation from a
seed assignment; if no fixpoint is reached within the iteration budget an
:class:`repro.errors.InitializationError` is raised — the circuit is
unstable under the given inputs (e.g. a ring oscillator with enable high).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from ..errors import InitializationError, StimulusError
from .logic import evaluate as evaluate_function
from .netlist import Netlist


def evaluate_netlist(
    netlist: Netlist,
    input_values: Mapping[str, int],
    seed: Optional[Mapping[str, int]] = None,
    max_iterations: int = 1000,
) -> Dict[str, int]:
    """Return the steady-state value of every net under ``input_values``.

    Args:
        netlist: the circuit.
        input_values: value for *every* primary input, keyed by net name.
        seed: starting values for internal nets, used only by the cyclic
            fallback (defaults to 0 for unlisted nets).
        max_iterations: relaxation budget for cyclic netlists.

    Raises:
        StimulusError: a primary input is missing or a value is not 0/1.
        InitializationError: a cyclic netlist failed to reach a fixpoint.
    """
    values: Dict[str, int] = {}
    for net in netlist.primary_inputs:
        if net.name not in input_values:
            raise StimulusError("missing value for primary input %r" % net.name)
        value = input_values[net.name]
        if value not in (0, 1):
            raise StimulusError(
                "input %r: value must be 0 or 1, got %r" % (net.name, value)
            )
        values[net.name] = value
    for name in input_values:
        if name not in netlist.nets or not netlist.nets[name].is_primary_input:
            raise StimulusError("%r is not a primary input" % name)
    for net in netlist.nets.values():
        if net.is_constant:
            values[net.name] = net.constant_value

    try:
        order = netlist.topological_gates()
    except Exception:
        return _relax(netlist, values, seed or {}, max_iterations)

    for gate in order:
        operands = [values[gi.net.name] for gi in gate.inputs]
        values[gate.output.name] = evaluate_function(gate.cell.function, operands)
    return values


def _relax(
    netlist: Netlist,
    fixed: Dict[str, int],
    seed: Mapping[str, int],
    max_iterations: int,
) -> Dict[str, int]:
    values = dict(fixed)
    for net in netlist.nets.values():
        if net.name not in values:
            values[net.name] = seed.get(net.name, 0)
    gates = list(netlist.gates.values())
    for _iteration in range(max_iterations):
        changed = False
        for gate in gates:
            operands = [values[gi.net.name] for gi in gate.inputs]
            new_value = evaluate_function(gate.cell.function, operands)
            if values[gate.output.name] != new_value:
                values[gate.output.name] = new_value
                changed = True
        if not changed:
            return values
    raise InitializationError(
        "netlist %r did not reach a stable state after %d relaxation sweeps; "
        "provide a consistent seed or different inputs"
        % (netlist.name, max_iterations)
    )


def bus_value(values: Mapping[str, int], prefix: str, width: int) -> int:
    """Assemble the integer value of bus ``prefix0..prefix{w-1}`` (LSB 0)."""
    word = 0
    for bit in range(width):
        word |= (values["%s%d" % (prefix, bit)] & 1) << bit
    return word


def bus_assignment(prefix: str, width: int, word: int) -> Dict[str, int]:
    """Spread integer ``word`` onto bus inputs ``prefix0..prefix{w-1}``."""
    if word < 0 or word >= (1 << width):
        raise StimulusError(
            "value %d does not fit in %d-bit bus %r" % (word, width, prefix)
        )
    return {"%s%d" % (prefix, bit): (word >> bit) & 1 for bit in range(width)}
