"""Grandfathered findings.

A baseline entry matches a finding by *fingerprint* — a hash of the
rule id, the file and the message, deliberately excluding the line
number so unrelated edits above a grandfathered site do not resurrect
it.  Removing an entry (or fixing the code) un-grandfathers the finding
and the next run fails again; ``tests/halolint/test_baseline.py`` pins
that round trip.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.findings import Finding

_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Line-number-free identity of a finding (rule | file | message)."""
    key = "%s|%s|%s" % (finding.rule, finding.file or "", finding.message)
    return hashlib.sha256(key.encode()).hexdigest()[:16]


class Baseline:
    """The set of grandfathered finding fingerprints."""

    def __init__(self, entries: Optional[Sequence[Dict[str, object]]] = None):
        self.entries: List[Dict[str, object]] = list(entries or [])

    @property
    def fingerprints(self) -> set[str]:
        return {str(entry["fingerprint"]) for entry in self.entries}

    @classmethod
    def load(cls, path: Path) -> Baseline:
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.is_file():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if (
            not isinstance(payload, dict)
            or payload.get("version") != _VERSION
            or not isinstance(payload.get("entries"), list)
        ):
            raise ValueError(
                "%s is not a halolint baseline (need {'version': %d, "
                "'entries': [...]})" % (path, _VERSION)
            )
        return cls(payload["entries"])

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> Baseline:
        """Grandfather ``findings`` (what ``--write-baseline`` stores)."""
        return cls([
            {
                "fingerprint": fingerprint(finding),
                "rule": finding.rule,
                "file": finding.file,
                "message": finding.message,
            }
            for finding in findings
        ])

    def save(self, path: Path) -> None:
        ordered = sorted(
            self.entries,
            key=lambda e: (str(e.get("rule")), str(e.get("file")),
                           str(e.get("message"))),
        )
        Path(path).write_text(
            json.dumps({"version": _VERSION, "entries": ordered}, indent=2)
            + "\n",
            encoding="utf-8",
        )

    def split(
        self, findings: Sequence[Finding]
    ) -> tuple[List[Finding], int, List[str]]:
        """Partition findings against the baseline.

        Returns ``(fresh, grandfathered_count, stale_fingerprints)`` —
        fresh findings gate the run; stale fingerprints matched nothing
        (the grandfathered code was fixed) and should be pruned.
        """
        known = self.fingerprints
        fresh: List[Finding] = []
        seen: set[str] = set()
        for finding in findings:
            mark = fingerprint(finding)
            if mark in known:
                seen.add(mark)
            else:
                fresh.append(finding)
        stale = sorted(known - seen)
        return fresh, len(findings) - len(fresh), stale
