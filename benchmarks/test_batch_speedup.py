"""Batch throughput: simulate_batch vs N independent simulate() calls.

Batching exists to amortise per-run fixed costs — engine construction,
backend dispatch, config validation — across a stream of vectors while
producing bit-identical per-vector results (parity is pinned in
tests/core/test_batch.py).  This benchmark drives a many-short-vectors
workload, the regime a high-traffic simulation service lives in, and
asserts the batched amortised per-vector time beats N independent
``simulate()`` calls.
"""

from __future__ import annotations

import time

from repro.config import ddm_config
from repro.core.batch import simulate_batch
from repro.core.engine import simulate
from repro.experiments import common
from repro.stimuli.patterns import random_vector_batch

#: Many short vectors on the 4x4 multiplier: per-vector fixed costs are
#: a visible fraction of each run, which is exactly what batching
#: amortises away.
_VECTORS = 40
_STEPS = 2
_SEED = 19


def _workload():
    netlist = common.multiplier_netlist()
    stimuli = random_vector_batch(
        [net.name for net in netlist.primary_inputs],
        batch=_VECTORS,
        count=_STEPS,
        period=2.0,
        base_seed=_SEED,
        tail=2.0,
    )
    return netlist, stimuli


def _throughput_config():
    return ddm_config(record_traces=False)


def test_batch_throughput(benchmark, bench_record):
    """Wall-clock of the batched path, recorded into the trajectory."""
    netlist, stimuli = _workload()
    config = _throughput_config()
    batch = benchmark(
        simulate_batch, netlist, stimuli, config=config, engine_kind="compiled"
    )
    aggregate = batch.aggregate_stats()
    assert aggregate.events_executed > 0
    benchmark.extra_info["vectors"] = len(batch)
    benchmark.extra_info["events_executed"] = aggregate.events_executed
    bench_record(
        "batch-throughput",
        config={"engine": "compiled", "vectors": _VECTORS,
                "steps": _STEPS, "seed": _SEED},
        measured={"events_executed": aggregate.events_executed},
    )


def test_batch_beats_independent_runs(benchmark, bench_record):
    """The acceptance bar: batched per-vector time < N independent runs."""
    netlist, stimuli = _workload()
    config = _throughput_config()

    def independent_s(repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for stimulus in stimuli:
                simulate(
                    netlist, stimulus, config=config, engine_kind="compiled"
                )
            best = min(best, time.perf_counter() - start)
        return best

    def batched_s(repeats: int = 3) -> float:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            simulate_batch(
                netlist, stimuli, config=config, engine_kind="compiled"
            )
            best = min(best, time.perf_counter() - start)
        return best

    # Warm both paths (and the lowering cache, as any repeated workload
    # would).
    simulate(netlist, stimuli[0], config=config, engine_kind="compiled")
    simulate_batch(netlist, stimuli[:2], config=config, engine_kind="compiled")

    def measure():
        # Up to 3 attempts keeping the best observed ratio: one noisy
        # scheduler blip on a shared CI runner must not fail the tier-1
        # gate when the steady-state advantage is real.
        best_speedup, best_pair = 0.0, (0.0, float("inf"))
        for _attempt in range(3):
            loose = independent_s()
            batched = batched_s()
            speedup = loose / batched
            if speedup > best_speedup:
                best_speedup, best_pair = speedup, (loose, batched)
            if best_speedup >= 1.05:
                break
        return best_pair

    loose_s, batch_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    speedup = loose_s / batch_s
    benchmark.extra_info["independent_s"] = round(loose_s, 6)
    benchmark.extra_info["batched_s"] = round(batch_s, 6)
    benchmark.extra_info["speedup"] = round(speedup, 3)
    benchmark.extra_info["amortised_per_vector_s"] = round(
        batch_s / _VECTORS, 8
    )
    bench_record(
        "batch-speedup-vs-independent",
        config={"engine": "compiled", "vectors": _VECTORS,
                "steps": _STEPS, "seed": _SEED},
        measured={"independent_s": round(loose_s, 6),
                  "batched_s": round(batch_s, 6),
                  "speedup": round(speedup, 3),
                  "amortised_per_vector_s": round(batch_s / _VECTORS, 8)},
    )
    assert speedup > 1.0, (
        "batched per-vector time no better than independent runs "
        "(independent %.4fs, batched %.4fs, %.2fx)"
        % (loose_s, batch_s, speedup)
    )


def test_batch_matches_independent_on_benchmark_workload(benchmark):
    """Guard: the timed paths really are the same computation."""
    netlist, stimuli = _workload()
    config = ddm_config()

    def run_both():
        batch = simulate_batch(
            netlist, stimuli[:5], config=config, engine_kind="compiled"
        )
        loose = [
            simulate(netlist, stimulus, config=config, engine_kind="compiled")
            for stimulus in stimuli[:5]
        ]
        return batch, loose

    batch, loose = benchmark(run_both)
    for batched, standalone in zip(batch, loose):
        assert batched.stats.events_executed == standalone.stats.events_executed
        assert batched.final_values == standalone.final_values
        for bit in range(2 * common.WIDTH):
            name = "s%d" % bit
            assert (
                batched.traces[name].edges() == standalone.traces[name].edges()
            )
