"""Fault-injection campaigns over the timing engines.

An SBFI-style dependability layer: deterministic faultload generation
(:mod:`~repro.faults.faultload`), in-place lowering injection with
guaranteed restoration (:mod:`~repro.faults.inject`) and a campaign
driver that fans mutants over every throughput layer and classifies
each mutant trace against a golden run
(:mod:`~repro.faults.campaign`).

The degradation delay model is what makes this layer more than an RTL
injector: an injected SET pulse's survival through the fanout cone is
decided by the same inertial/degradation physics as any other glitch,
so "masked-by-inertial" is a measurable outcome class, not a guess.
"""

from .faultload import (
    FaultKind,
    FaultSpec,
    Faultload,
    generate_faultload,
    mean_arc_delay,
)
from .inject import (
    FaultInjection,
    FaultedStimulus,
    lowering_fingerprint,
    run_faulted_stimulus,
)
from .campaign import (
    Classification,
    DependabilityReport,
    MutantOutcome,
    run_campaign,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "Faultload",
    "generate_faultload",
    "mean_arc_delay",
    "FaultInjection",
    "FaultedStimulus",
    "lowering_fingerprint",
    "run_faulted_stimulus",
    "Classification",
    "DependabilityReport",
    "MutantOutcome",
    "run_campaign",
]
