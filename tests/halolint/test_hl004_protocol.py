"""Teeth tests for HL004 — JSONL protocol-frame consistency."""

from __future__ import annotations

from conftest import findings_for

CLIENT = "src/repro/server/client.py"
APP = "src/repro/server/app.py"

GOOD_CLIENT = """
    class Client:
        def call(self, op, **fields):
            return self._transport(op, fields)

        def ping(self):
            return self.call("ping")

        def simulate(self, netlist, vector, full=True):
            return self.call(
                "simulate", netlist=netlist, vector=vector, full=full
            )

        def register(self, name, workers=None):
            fields = {"name": name}
            if workers is not None:
                fields["workers"] = workers
            return self.call("register", **fields)

        def read(self):
            frame = self._recv()
            if frame.get("ok"):
                return frame.get("result")
            error = frame.get("error") or {}
            return (error.get("kind"), error.get("message"))
"""

GOOD_APP = """
    class Server:
        async def _op_ping(self, _frame):
            return {"pong": True}

        async def _op_simulate(self, frame):
            netlist = frame.get("netlist")
            vector = frame["vector"]
            full = frame.get("full", True)
            return {"netlist": netlist, "lanes": [vector], "full": full}

        async def _op_register(self, frame):
            return {"name": frame.get("name"),
                    "workers": frame.get("workers")}

        async def _serve(self, frame):
            op = frame.get("op")
            handler = self._OPS.get(op)
            try:
                result = await handler(self, frame)
                return {"id": frame.get("id"), "ok": True, "op": op,
                        "result": result}
            except Exception as error:
                return {
                    "id": frame.get("id"),
                    "ok": False,
                    "op": op,
                    "error": {"kind": "internal", "message": str(error)},
                }

        _OPS = {
            "ping": _op_ping,
            "simulate": _op_simulate,
            "register": _op_register,
        }
"""


def test_matching_halves_are_clean(lint_tree):
    result = lint_tree({CLIENT: GOOD_CLIENT, APP: GOOD_APP})
    assert findings_for(result, "HL004") == []


def test_client_op_missing_from_dispatch_table_fires(lint_tree):
    client = GOOD_CLIENT + """
        def stats(self):
            return self.call("stats")
    """
    result = lint_tree({CLIENT: client, APP: GOOD_APP})
    (finding,) = findings_for(result, "HL004")
    assert "'stats'" in finding.message
    assert "does not dispatch" in finding.message


def test_dispatched_op_the_client_never_sends_fires(lint_tree):
    client = GOOD_CLIENT.replace("""\
        def ping(self):
            return self.call("ping")

""", "")
    result = lint_tree({CLIENT: client, APP: GOOD_APP})
    (finding,) = findings_for(result, "HL004")
    assert "'ping'" in finding.message
    assert "never sends" in finding.message


def test_sent_field_the_handler_ignores_fires(lint_tree):
    client = GOOD_CLIENT.replace(
        "vector=vector, full=full", "vector=vector, full=full, fast=1"
    )
    result = lint_tree({CLIENT: client, APP: GOOD_APP})
    (finding,) = findings_for(result, "HL004")
    assert "'fast'" in finding.message
    assert "never reads" in finding.message


def test_required_read_the_client_never_writes_fires(lint_tree):
    client = GOOD_CLIENT.replace(" vector=vector,", "")
    result = lint_tree({CLIENT: client, APP: GOOD_APP})
    (finding,) = findings_for(result, "HL004")
    assert finding.file == APP
    assert "'vector'" in finding.message
    assert "never writes" in finding.message


def test_star_expanded_builder_fields_are_tracked(lint_tree):
    # ``register()`` sends name/workers through a built dict; the
    # clean run proves both keys are credited to the op (otherwise the
    # required-read/ignored-field checks above would fire on them).
    result = lint_tree({CLIENT: GOOD_CLIENT, APP: GOOD_APP})
    assert findings_for(result, "HL004") == []


def test_non_envelope_response_key_fires(lint_tree):
    app = GOOD_APP.replace(
        '"ok": True, "op": op,', '"ok": True, "op": op, "extra": 1,'
    )
    result = lint_tree({CLIENT: GOOD_CLIENT, APP: app})
    (finding,) = findings_for(result, "HL004")
    assert "extra" in finding.message


def test_client_reading_unwritten_error_key_fires(lint_tree):
    client = GOOD_CLIENT.replace(
        'error.get("kind")', 'error.get("trace")'
    )
    result = lint_tree({CLIENT: client, APP: GOOD_APP})
    (finding,) = findings_for(result, "HL004")
    assert "'trace'" in finding.message


def test_rule_is_inert_without_both_halves(lint_tree):
    result = lint_tree({CLIENT: GOOD_CLIENT})
    assert findings_for(result, "HL004") == []


def test_disabling_the_rule_loses_the_teeth(lint_tree):
    bad = {
        CLIENT: GOOD_CLIENT + """
        def stats(self):
            return self.call("stats")
        """,
        APP: GOOD_APP,
    }
    assert findings_for(lint_tree(bad), "HL004")
    assert not findings_for(lint_tree(bad, disabled=["HL004"]), "HL004")
