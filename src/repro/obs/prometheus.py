"""Prometheus text exposition for :mod:`repro.obs.registry` snapshots.

Two halves:

* :func:`render` / :func:`render_snapshot` — produce the text format
  (version 0.0.4) the server's ``metrics`` op returns and any Prometheus
  scraper ingests: ``# HELP`` / ``# TYPE`` headers, escaped label
  values, cumulative ``_bucket{le=...}`` series plus ``_sum`` and
  ``_count`` for histograms.
* :func:`parse_text` — a deliberately minimal parser used by the test
  suite and the CI smoke job to validate what a live server serves.  It
  understands exactly what :func:`render` emits (and what any conforming
  exporter emits for counters/gauges/histograms); it is not a general
  OpenMetrics parser.

Everything here works on *snapshots* (plain dicts), not live registries,
so rendering never holds metric locks and remote snapshots (shipped from
service workers) render identically to local ones.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Tuple

if TYPE_CHECKING:
    from .registry import MetricsRegistry

__all__ = ["render", "render_snapshot", "parse_text"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _format_labels(names: List[str], values: List[str]) -> str:
    if not names:
        return ""
    parts = [
        '%s="%s"' % (name, _escape_label_value(str(value)))
        for name, value in zip(names, values)
    ]
    return "{" + ",".join(parts) + "}"


def _render_metric(name: str, entry: Mapping[str, object]) -> List[str]:
    kind = entry["type"]
    label_names = list(entry.get("label_names", ()))
    lines = []
    help_text = str(entry.get("help", "")).strip()
    if help_text:
        lines.append("# HELP %s %s" % (name, _escape_help(help_text)))
    lines.append("# TYPE %s %s" % (name, kind))
    if kind == "histogram":
        edges = [float(edge) for edge in entry.get("buckets", ())]
        for item in entry["series"]:
            values = [str(value) for value in item["labels"]]
            cumulative = 0
            for edge, count in zip(
                edges + [math.inf], item["counts"]
            ):
                cumulative += count
                bucket_labels = _format_labels(
                    label_names + ["le"],
                    values + [_format_value(edge)],
                )
                lines.append(
                    "%s_bucket%s %d" % (name, bucket_labels, cumulative)
                )
            plain = _format_labels(label_names, values)
            lines.append(
                "%s_sum%s %s" % (name, plain, _format_value(item["sum"]))
            )
            lines.append("%s_count%s %d" % (name, plain, item["count"]))
    else:
        for item in entry["series"]:
            values = [str(value) for value in item["labels"]]
            lines.append(
                "%s%s %s" % (
                    name,
                    _format_labels(label_names, values),
                    _format_value(item["value"]),
                )
            )
    return lines


def render_snapshot(snapshot: Mapping[str, object]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict to exposition text."""
    metrics = snapshot.get("metrics")
    if not isinstance(metrics, Mapping):
        raise ValueError("not a metrics snapshot: missing 'metrics' map")
    lines: List[str] = []
    for name in sorted(metrics):
        lines.extend(_render_metric(name, metrics[name]))
    return "\n".join(lines) + ("\n" if lines else "")


def render(registry: Optional[MetricsRegistry] = None) -> str:
    """Render a registry (default: the process-default one)."""
    from .registry import get_registry

    if registry is None:
        registry = get_registry()
    return render_snapshot(registry.snapshot())


# -- minimal parser (tests + CI smoke validation) ----------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(
    r'\s*(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:\\.|[^"\\])*)"\s*(?:,|$)'
)


def _unescape_label_value(raw: str) -> str:
    return (
        raw.replace('\\"', '"').replace("\\n", "\n").replace("\\\\", "\\")
    )


def _parse_labels(raw: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    position = 0
    while position < len(raw):
        match = _LABEL_RE.match(raw, position)
        if match is None:
            raise ValueError("malformed label set: {%s}" % raw)
        labels[match.group("name")] = _unescape_label_value(
            match.group("value")
        )
        position = match.end()
    return labels


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def parse_text(
    text: str,
) -> Dict[str, Dict[str, object]]:
    """Parse exposition text into ``{metric_name: {...}}``.

    Each entry carries ``type`` (from ``# TYPE``, or ``"untyped"``),
    ``help`` and ``samples`` — a list of ``(sample_name, labels, value)``
    tuples where histogram ``_bucket``/``_sum``/``_count`` samples are
    grouped under the base metric name.  Raises ``ValueError`` on any
    line it cannot understand; the CI smoke job leans on that strictness.
    """
    metrics: Dict[str, Dict[str, object]] = {}

    def entry(name: str) -> Dict[str, object]:
        return metrics.setdefault(
            name, {"type": "untyped", "help": "", "samples": []}
        )

    declared_histograms = set()
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("# HELP "):
            _, _, rest = stripped.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            entry(name)["help"] = help_text
            continue
        if stripped.startswith("# TYPE "):
            _, _, rest = stripped.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            kind = kind.strip()
            if kind not in ("counter", "gauge", "histogram", "untyped",
                            "summary"):
                raise ValueError(
                    "line %d: unknown metric type %r" % (lineno, kind)
                )
            entry(name)["type"] = kind
            if kind == "histogram":
                declared_histograms.add(name)
            continue
        if stripped.startswith("#"):
            continue  # comment
        match = _SAMPLE_RE.match(stripped)
        if match is None:
            raise ValueError("line %d: malformed sample: %r" % (lineno, line))
        sample_name = match.group("name")
        labels = _parse_labels(match.group("labels") or "")
        value = _parse_value(match.group("value"))
        base = sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                candidate = sample_name[: -len(suffix)]
                if candidate in declared_histograms:
                    base = candidate
                    break
        samples = entry(base)["samples"]
        samples.append((sample_name, labels, value))  # type: ignore[union-attr]
    _validate_histograms(metrics)
    return metrics


def _validate_histograms(metrics: Mapping[str, Mapping[str, object]]) -> None:
    """Check histogram internal consistency: cumulative buckets ending at
    ``_count``, and a ``+Inf`` bucket per series."""
    for name, entry in metrics.items():
        if entry["type"] != "histogram":
            continue
        by_series: Dict[Tuple[Tuple[str, str], ...], Dict[str, object]] = {}
        for sample_name, labels, value in entry["samples"]:  # type: ignore[union-attr]
            plain = tuple(
                sorted(
                    (key, val) for key, val in labels.items() if key != "le"
                )
            )
            slot = by_series.setdefault(
                plain, {"buckets": [], "sum": None, "count": None}
            )
            if sample_name == name + "_bucket":
                slot["buckets"].append(  # type: ignore[union-attr]
                    (_parse_value(labels["le"]), value)
                )
            elif sample_name == name + "_sum":
                slot["sum"] = value
            elif sample_name == name + "_count":
                slot["count"] = value
        for series_key, slot in by_series.items():
            buckets = sorted(slot["buckets"])  # type: ignore[arg-type]
            if not buckets or buckets[-1][0] != math.inf:
                raise ValueError(
                    "histogram %s%r lacks a +Inf bucket" % (name, series_key)
                )
            last = -1.0
            for _, cumulative in buckets:
                if cumulative < last:
                    raise ValueError(
                        "histogram %s%r buckets are not cumulative"
                        % (name, series_key)
                    )
                last = cumulative
            if slot["count"] is not None and buckets[-1][1] != slot["count"]:
                raise ValueError(
                    "histogram %s%r +Inf bucket != _count"
                    % (name, series_key)
                )
