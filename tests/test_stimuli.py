"""Vector sequences and pulse patterns."""

import pytest
from hypothesis import given, strategies as st

from repro.circuit import modules
from repro.errors import StimulusError
from repro.stimuli.patterns import glitch_pair, pulse, pulse_train, random_vectors
from repro.stimuli.vectors import (
    PAPER_SEQUENCE_1,
    PAPER_SEQUENCE_2,
    VectorSequence,
    multiplication_sequence,
)


def test_paper_sequences_are_the_paper_ones():
    assert PAPER_SEQUENCE_1 == ((0, 0), (7, 7), (5, 10), (14, 6), (15, 15))
    assert PAPER_SEQUENCE_2 == ((0, 0), (15, 15), (0, 0), (15, 15), (0, 0))


def test_sequence_validation():
    with pytest.raises(StimulusError):
        VectorSequence([])
    with pytest.raises(StimulusError):
        VectorSequence([(0.0, {"a": 0}), (0.0, {"a": 1})])
    with pytest.raises(StimulusError):
        VectorSequence([(-1.0, {"a": 0})])
    with pytest.raises(StimulusError):
        VectorSequence([(0.0, {"a": 2})])
    with pytest.raises(StimulusError):
        VectorSequence([(0.0, {"a": 0})], horizon=-1.0)


def test_defaults_must_be_binary_or_none():
    with pytest.raises(StimulusError):
        VectorSequence([(0.0, {"a": 0})], defaults=2)
    with pytest.raises(StimulusError):
        VectorSequence([(0.0, {"a": 0})], defaults=-1)
    # the supported values still work
    VectorSequence([(0.0, {"a": 0})], defaults=0)
    VectorSequence([(0.0, {"a": 0})], defaults=1)
    VectorSequence([(0.0, {"a": 0})], defaults=None)


def test_bad_defaults_cannot_leak_into_initial_values():
    """The regression: defaults=2 used to flow silently into the DC
    assignment of every uncovered primary input."""
    with pytest.raises(StimulusError):
        VectorSequence([(1.0, {"in": 1})], defaults=2)


def test_horizon_must_lie_after_the_last_ramped_step():
    # equality with the last (ramped) step would end the stimulus at the
    # very instant its final input ramp starts
    with pytest.raises(StimulusError):
        VectorSequence([(0.0, {"a": 0}), (5.0, {"a": 1})], horizon=5.0)
    with pytest.raises(StimulusError):
        VectorSequence([(0.0, {"a": 0}), (5.0, {"a": 1})], horizon=4.0)
    # strictly-after is accepted
    ok = VectorSequence([(0.0, {"a": 0}), (5.0, {"a": 1})], horizon=5.25)
    assert ok.horizon == 5.25
    # a DC-only sequence has no ramp in flight: equality stays legal
    dc = VectorSequence([(0.0, {"a": 0})], horizon=0.0)
    assert dc.horizon == 0.0


def test_initial_values_fill_defaults(chain3):
    sequence = VectorSequence([(1.0, {"in": 1})])
    assert sequence.initial_values(chain3) == {"in": 0}


def test_initial_values_strict_mode(chain3):
    sequence = VectorSequence([(1.0, {"in": 1})], defaults=None)
    with pytest.raises(StimulusError):
        sequence.initial_values(chain3)


def test_initial_values_reject_unknown_nets(chain3):
    sequence = VectorSequence([(0.0, {"in": 0, "bogus": 1})])
    with pytest.raises(StimulusError):
        sequence.initial_values(chain3)


def test_iter_changes_skips_time_zero():
    sequence = VectorSequence(
        [(0.0, {"a": 0}), (2.0, {"a": 1}), (4.0, {"a": 0})], slew=0.3
    )
    changes = list(sequence.iter_changes())
    assert changes == [(2.0, {"a": 1}, 0.3), (4.0, {"a": 0}, 0.3)]


def test_horizon_defaults_to_last_step_plus_tail():
    sequence = VectorSequence([(0.0, {"a": 0}), (7.0, {"a": 1})], tail=3.0)
    assert sequence.horizon == 10.0
    explicit = VectorSequence([(0.0, {"a": 0})], horizon=42.0)
    assert explicit.horizon == 42.0


def test_from_bus_words():
    sequence = VectorSequence.from_bus_words(
        {"a": (2, [0, 3]), "b": (2, [1, 2])}, period=4.0
    )
    assert len(sequence) == 2
    first_time, first = sequence.steps[0]
    assert first_time == 0.0
    assert first == {"a0": 0, "a1": 0, "b0": 1, "b1": 0}
    second_time, second = sequence.steps[1]
    assert second_time == 4.0
    assert second == {"a0": 1, "a1": 1, "b0": 0, "b1": 1}


def test_from_bus_words_validation():
    with pytest.raises(StimulusError):
        VectorSequence.from_bus_words({"a": (2, [0]), "b": (2, [0, 1])}, 5.0)
    with pytest.raises(StimulusError):
        VectorSequence.from_bus_words({"a": (2, [])}, 5.0)
    with pytest.raises(StimulusError):
        VectorSequence.from_bus_words({"a": (2, [0])}, 0.0)


def test_multiplication_sequence_matches_figure6_axis():
    sequence = multiplication_sequence(PAPER_SEQUENCE_1)
    times = [t for t, _a in sequence.steps]
    assert times == [0.0, 5.0, 10.0, 15.0, 20.0]
    assert sequence.horizon == 25.0


def test_pulse_shape():
    stimulus = pulse("x", start=2.0, width=0.5, background={"y": 1})
    assert stimulus.steps[0] == (0.0, {"y": 1, "x": 0})
    assert stimulus.steps[1] == (2.0, {"x": 1})
    assert stimulus.steps[2] == (2.5, {"x": 0})


def test_pulse_polarity_zero():
    stimulus = pulse("x", start=1.0, width=0.5, polarity=0)
    assert stimulus.steps[0][1]["x"] == 1
    assert stimulus.steps[1][1]["x"] == 0


def test_pulse_validation():
    with pytest.raises(StimulusError):
        pulse("x", start=0.0, width=1.0)
    with pytest.raises(StimulusError):
        pulse("x", start=1.0, width=0.0)
    with pytest.raises(StimulusError):
        pulse("x", start=1.0, width=1.0, polarity=2)


def test_pulse_train_steps():
    stimulus = pulse_train("x", start=1.0, width=0.2, spacing=1.0, count=3)
    rising = [t for t, a in stimulus.steps if a.get("x") == 1]
    assert rising == [1.0, 2.0, 3.0]
    with pytest.raises(StimulusError):
        pulse_train("x", start=1.0, width=0.5, spacing=0.4, count=2)
    with pytest.raises(StimulusError):
        pulse_train("x", start=1.0, width=0.2, spacing=1.0, count=0)


def test_glitch_pair_gap():
    stimulus = glitch_pair("x", first_start=1.0, first_width=0.3, gap=0.5,
                           second_width=0.2)
    times = [t for t, _a in stimulus.steps]
    assert times == [0.0, 1.0, 1.3, 1.8, 2.0]
    with pytest.raises(StimulusError):
        glitch_pair("x", 1.0, 0.3, 0.0, 0.2)


def test_to_dict_from_dict_round_trip():
    sequence = VectorSequence(
        [(0.0, {"a": 0, "b": 1}), (2.0, {"a": 1})], slew=0.3, horizon=9.0
    )
    clone = VectorSequence.from_dict(sequence.to_dict())
    assert clone.steps == sequence.steps
    assert clone.slew == sequence.slew
    assert clone.defaults == sequence.defaults
    assert clone.horizon == sequence.horizon


def test_from_dict_validates_payload():
    with pytest.raises(StimulusError):
        VectorSequence.from_dict({"slew": 0.2})
    with pytest.raises(StimulusError):
        VectorSequence.from_dict({"steps": [[0.0, {"a": 2}]]})
    with pytest.raises(StimulusError):
        VectorSequence.from_dict({"steps": [[0.0, {"a": 0}]], "defaults": 3})
    # malformed step shapes surface as StimulusError, not raw TypeError/
    # KeyError tracebacks (the CLI only catches ReproError)
    with pytest.raises(StimulusError):
        VectorSequence.from_dict({"steps": [{"t": 0}]})
    with pytest.raises(StimulusError):
        VectorSequence.from_dict({"steps": [["x", {"a": 0}]]})
    with pytest.raises(StimulusError):
        VectorSequence.from_dict({"steps": [[0.0]]})
    with pytest.raises(StimulusError):
        VectorSequence.from_dict(42)


def test_load_vector_batches(tmp_path):
    import json

    from repro.stimuli.vectors import load_vector_batches

    path = tmp_path / "vectors.json"
    path.write_text(json.dumps([
        {"steps": [[0.0, {"a": 0}], [2.0, {"a": 1}]], "slew": 0.25},
        {"steps": [[0.0, {"a": 1}]], "horizon": 7.5},
    ]))
    batch = load_vector_batches(str(path))
    assert len(batch) == 2
    assert batch[0].slew == 0.25
    assert batch[1].horizon == 7.5

    wrapped = tmp_path / "wrapped.json"
    wrapped.write_text(json.dumps({"vectors": [{"steps": [[0.0, {"a": 0}]]}]}))
    assert len(load_vector_batches(str(wrapped))) == 1

    empty = tmp_path / "empty.json"
    empty.write_text("[]")
    with pytest.raises(StimulusError):
        load_vector_batches(str(empty))


def test_random_vector_batch_deterministic_and_independent():
    from repro.stimuli.patterns import random_vector_batch

    names = ["a", "b"]
    batch = random_vector_batch(names, batch=3, count=4, period=2.0,
                                base_seed=5)
    assert len(batch) == 3
    # member k reproduces random_vectors with seed base_seed + k
    for position, sequence in enumerate(batch):
        twin = random_vectors(names, count=4, period=2.0, seed=5 + position)
        assert sequence.steps == twin.steps
    assert batch[0].steps != batch[1].steps
    with pytest.raises(StimulusError):
        random_vector_batch(names, batch=0, count=1, period=1.0)


def test_random_vectors_deterministic():
    names = ["a", "b", "c"]
    first = random_vectors(names, count=5, period=2.0, seed=7)
    second = random_vectors(names, count=5, period=2.0, seed=7)
    different = random_vectors(names, count=5, period=2.0, seed=8)
    assert first.steps == second.steps
    assert first.steps != different.steps
    assert len(first) == 5
    with pytest.raises(StimulusError):
        random_vectors(names, count=0, period=1.0)


# ----------------------------------------------------------------------
# serialisation round-trip: the wire format's correctness foundation
# ----------------------------------------------------------------------

def _sequences_equal(first, second):
    assert second.steps == first.steps
    assert second.slew == first.slew
    assert second.defaults == first.defaults
    assert second.horizon == first.horizon


@st.composite
def vector_sequences(draw):
    """Randomized valid VectorSequences (the from_dict preconditions)."""
    names = draw(st.lists(
        st.sampled_from(["a", "b", "c", "in7", "n_1"]),
        min_size=1, max_size=4, unique=True,
    ))
    times = sorted(draw(st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=6, unique=True,
    )))
    steps = []
    for step_time in times:
        assignments = {
            name: draw(st.integers(0, 1))
            for name in draw(st.lists(st.sampled_from(names), min_size=1,
                                      unique=True))
        }
        steps.append((step_time, assignments))
    slew = draw(st.one_of(
        st.none(),
        st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
    ))
    defaults = draw(st.sampled_from([0, 1, None]))
    last = times[-1]
    horizon = draw(st.one_of(
        st.none(),
        st.floats(min_value=0.5, max_value=100.0,
                  allow_nan=False).map(lambda delta: last + delta),
    ))
    tail = draw(st.floats(min_value=0.5, max_value=50.0, allow_nan=False))
    return VectorSequence(
        steps, slew=slew, defaults=defaults, horizon=horizon, tail=tail
    )


@given(vector_sequences())
def test_to_dict_from_dict_roundtrip(sequence):
    """from_dict(to_dict(s)) reproduces s field for field."""
    _sequences_equal(sequence, VectorSequence.from_dict(sequence.to_dict()))


@given(vector_sequences())
def test_roundtrip_survives_json_text(sequence):
    """The real wire: through json.dumps/loads, floats bit-exact.

    This is the property the JSONL protocol (CLI streaming mode and the
    network server) stands on — CPython's float repr round-trip means no
    step time, slew or horizon is perturbed by serialisation.
    """
    import json as _json

    payload = _json.loads(_json.dumps(sequence.to_dict()))
    rebuilt = VectorSequence.from_dict(payload)
    _sequences_equal(sequence, rebuilt)
    # and the codec module agrees with the method-level round-trip
    from repro.io_formats import jsonl_protocol

    again = jsonl_protocol.decode_vector_line(
        jsonl_protocol.encode_vector_line(sequence)
    )
    _sequences_equal(sequence, again)


@given(vector_sequences())
def test_roundtrip_is_stable(sequence):
    """to_dict of a round-tripped sequence is identical (fixed point)."""
    rebuilt = VectorSequence.from_dict(sequence.to_dict())
    assert rebuilt.to_dict() == sequence.to_dict()
