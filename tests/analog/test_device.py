"""Alpha-power-law MOSFET model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analog.device import (
    MosfetParams,
    dc_inverter_threshold,
    mosfet_current,
)
from repro.analog.technology import default_technology

TECH = default_technology()
NMOS = MosfetParams.nmos(TECH)
PMOS = MosfetParams.pmos(TECH)


def test_off_below_threshold():
    assert mosfet_current(NMOS, 0.5, 2.0, 1.0) == 0.0
    assert mosfet_current(NMOS, TECH.vth_n, 2.0, 1.0) == 0.0


def test_zero_vds_zero_current():
    assert mosfet_current(NMOS, 5.0, 0.0, 1.0) == 0.0


def test_negative_vds_clamped():
    assert mosfet_current(NMOS, 5.0, -1.0, 1.0) == 0.0


def test_saturation_plateau():
    deep = mosfet_current(NMOS, 5.0, 4.0, 1.0)
    deeper = mosfet_current(NMOS, 5.0, 5.0, 1.0)
    assert deep == pytest.approx(deeper)
    expected = TECH.k_n * (5.0 - TECH.vth_n) ** TECH.alpha_n
    assert deep == pytest.approx(expected)


def test_linear_region_below_saturation():
    vov = 5.0 - TECH.vth_n
    vdsat = TECH.kv_n * vov ** (0.5 * TECH.alpha_n)
    shallow = mosfet_current(NMOS, 5.0, 0.25 * vdsat, 1.0)
    saturated = mosfet_current(NMOS, 5.0, 2.0 * vdsat, 1.0)
    assert 0.0 < shallow < saturated


def test_width_scales_linearly():
    single = mosfet_current(NMOS, 4.0, 2.0, 1.0)
    double = mosfet_current(NMOS, 4.0, 2.0, 2.0)
    assert double == pytest.approx(2.0 * single)


def test_vectorised_shapes():
    vgs = np.array([0.0, 2.0, 5.0])
    vds = np.array([1.0, 1.0, 1.0])
    currents = mosfet_current(NMOS, vgs, vds, 1.0)
    assert currents.shape == (3,)
    assert currents[0] == 0.0
    assert currents[1] < currents[2]


@given(
    vgs1=st.floats(min_value=0.0, max_value=5.0),
    vgs2=st.floats(min_value=0.0, max_value=5.0),
    vds=st.floats(min_value=0.0, max_value=5.0),
)
def test_monotone_in_gate_drive(vgs1, vgs2, vds):
    low, high = sorted((vgs1, vgs2))
    assert mosfet_current(NMOS, low, vds, 1.0) <= mosfet_current(
        NMOS, high, vds, 1.0
    ) + 1e-12


@given(
    vds1=st.floats(min_value=0.0, max_value=5.0),
    vds2=st.floats(min_value=0.0, max_value=5.0),
    vgs=st.floats(min_value=0.0, max_value=5.0),
)
def test_monotone_in_vds(vds1, vds2, vgs):
    low, high = sorted((vds1, vds2))
    assert mosfet_current(NMOS, vgs, low, 1.0) <= mosfet_current(
        NMOS, vgs, high, 1.0
    ) + 1e-12


def test_balanced_inverter_threshold_near_midrail():
    threshold = dc_inverter_threshold(TECH, wn=1.0, wp=1.0)
    assert 2.2 < threshold < 2.7


def test_skewed_inverter_thresholds_move():
    strong_n = dc_inverter_threshold(TECH, wn=4.0, wp=1.0)
    strong_p = dc_inverter_threshold(TECH, wn=1.0, wp=4.0)
    balanced = dc_inverter_threshold(TECH, wn=1.0, wp=1.0)
    assert strong_n < balanced < strong_p


def test_technology_validation():
    import dataclasses

    from repro.analog.technology import Technology
    from repro.errors import LibraryError

    Technology().validate()
    bad = dataclasses.replace(Technology(), vth_n=-1.0)
    with pytest.raises(LibraryError):
        bad.validate()
    bad = dataclasses.replace(Technology(), alpha_n=0.5)
    with pytest.raises(LibraryError):
        bad.validate()
    bad = dataclasses.replace(Technology(), k_p=0.0)
    with pytest.raises(LibraryError):
        bad.validate()
