#!/usr/bin/env python
"""Paper Figures 6 and 7 + Tables 1 and 2: the 4x4 multiplier evaluation.

Run:  python examples/multiplier_waveforms.py [--no-analog]

Simulates the Figure 5 array multiplier through both operand sequences
with three engines (analog substitute, HALOTIS-DDM, HALOTIS-CDM),
renders the three waveform panels of each figure, and regenerates the
statistics of Table 1 and the CPU times of Table 2.

The analog runs take a few seconds each; pass ``--no-analog`` for a
logic-only preview.
"""

import argparse

from repro.experiments import fig6_fig7, table1, table2


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--no-analog", action="store_true",
                        help="skip the electrical simulation panels")
    args = parser.parse_args()

    for which in (1, 2):
        result = fig6_fig7.run(which=which,
                               include_analog=not args.no_analog)
        print(result.format())
        print()

    print(table1.run().format())
    print()

    if not args.no_analog:
        print(table2.run().format())
        print()

    print("Reading guide: panel (c) [CDM] shows roughly twice the output")
    print("transitions of panels (a)/(b) — glitches that the degradation")
    print("effect removes both in the electrical truth and under the DDM.")


if __name__ == "__main__":
    main()
