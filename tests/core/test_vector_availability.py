"""The engine-availability matrix: clear failures at validation time.

Every numpy-backed engine (``vector``, ``bitparallel``) on a numpy-less
install must fail with one actionable :class:`SimulationError` (or the
server's ``bad-frame`` twin) at *configuration* time — config
validation, ``make_engine``, service construction, server registration,
the CLI — never as a bare ``ImportError`` mid-simulation.  The pure
backends (``reference``, ``compiled``) must keep validating and running
with numpy gone.  numpy is installed in CI, so absence is simulated by
monkeypatching :func:`repro.config.numpy_available`, which every layer
consults through the module.

The matrix is driven from ``ENGINE_KINDS`` itself, so a newly
registered backend is automatically probed on both axes.
"""

from __future__ import annotations

import pytest

import repro.config as config_module
from repro.config import SimulationConfig, ddm_config
from repro.core.engine import ENGINE_KINDS, make_engine
from repro.core.service import SimulationService
from repro.core.vector import VectorSimulator
from repro.errors import ServerError, SimulationError
from repro.server.registry import NetlistRegistry

ALL_KINDS = sorted(ENGINE_KINDS)

#: The declared availability split.  A test below proves this set stays
#: in sync with the registry's actual behaviour, so adding an engine
#: with an unlisted numpy dependency fails loudly here.
NUMPY_KINDS = frozenset({"vector", "bitparallel"})
PURE_KINDS = frozenset(ALL_KINDS) - NUMPY_KINDS


@pytest.fixture()
def no_numpy(monkeypatch):
    monkeypatch.setattr(config_module, "numpy_available", lambda: False)


def test_declared_split_matches_registry(no_numpy):
    """NUMPY_KINDS is exactly the set of kinds whose ensure_available
    raises without numpy — the matrix can't silently go stale."""
    needing = set()
    for kind in ALL_KINDS:
        try:
            ENGINE_KINDS[kind].ensure_available()
        except SimulationError:
            needing.add(kind)
    assert needing == NUMPY_KINDS


def test_all_kinds_registered_even_without_numpy(no_numpy):
    # The registry always lists every backend, so unknown-kind errors
    # name them all and the availability failure stays the clear one.
    for kind in ALL_KINDS:
        assert kind in ENGINE_KINDS
    assert ENGINE_KINDS["vector"] is VectorSimulator


def test_unknown_engine_error_lists_every_kind(chain3):
    with pytest.raises(SimulationError) as excinfo:
        make_engine(chain3, engine_kind="warp")
    for kind in ALL_KINDS:
        assert kind in str(excinfo.value)


# ----------------------------------------------------------------------
# numpy-backed kinds: one actionable error per layer
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", sorted(NUMPY_KINDS))
def test_config_validation_requires_numpy(no_numpy, kind):
    config = SimulationConfig(engine_kind=kind)
    with pytest.raises(SimulationError) as excinfo:
        config.validate()
    message = str(excinfo.value)
    assert kind in message  # names the engine that needs it
    assert "numpy" in message
    assert "compiled" in message  # actionable: names the fallback


@pytest.mark.parametrize("kind", sorted(NUMPY_KINDS))
def test_make_engine_requires_numpy(chain3, no_numpy, kind):
    with pytest.raises(SimulationError) as excinfo:
        make_engine(chain3, engine_kind=kind)
    assert "numpy" in str(excinfo.value)


@pytest.mark.parametrize("kind", sorted(NUMPY_KINDS))
def test_service_construction_requires_numpy(mult4, no_numpy, kind):
    # Must fail before any worker is spawned, not as a crash loop.
    with pytest.raises(SimulationError) as excinfo:
        SimulationService(mult4, config=ddm_config(), workers=1,
                          engine_kind=kind)
    assert "numpy" in str(excinfo.value)


@pytest.mark.parametrize("kind", sorted(NUMPY_KINDS))
def test_server_registration_requires_numpy(no_numpy, kind):
    registry = NetlistRegistry(max_netlists=4)
    with pytest.raises(ServerError) as excinfo:
        registry.register(
            "c17.%s" % kind, {"kind": "builtin", "name": "c17"},
            engine_kind=kind,
        )
    assert excinfo.value.kind == "bad-frame"
    assert "numpy" in str(excinfo.value)
    assert len(registry) == 0  # the doomed entry consumed no slot


@pytest.mark.parametrize("kind", sorted(NUMPY_KINDS))
def test_cli_engine_requires_numpy(no_numpy, capsys, kind):
    from repro.cli import main

    assert main([
        "simulate", "--circuit", "c17", "--vectors", "2",
        "--engine", kind,
    ]) == 1
    err = capsys.readouterr().err
    assert "numpy" in err
    assert "Traceback" not in err


@pytest.mark.parametrize("kind", sorted(NUMPY_KINDS))
def test_cli_engine_batch_requires_numpy(no_numpy, capsys, kind):
    from repro.cli import main

    assert main([
        "simulate", "--circuit", "c17", "--batch", "3", "--vectors", "2",
        "--engine", kind,
    ]) == 1
    assert "numpy" in capsys.readouterr().err


# ----------------------------------------------------------------------
# pure-python kinds: unaffected by the probe
# ----------------------------------------------------------------------

@pytest.mark.parametrize("kind", sorted(PURE_KINDS))
def test_pure_kinds_validate_without_numpy(no_numpy, kind):
    SimulationConfig(engine_kind=kind).validate()


@pytest.mark.parametrize("kind", sorted(PURE_KINDS))
def test_pure_kinds_simulate_without_numpy(chain3, no_numpy, kind):
    from repro.stimuli.vectors import VectorSequence

    inputs = [net.name for net in chain3.primary_inputs]
    steps = [(0.0, {name: 0 for name in inputs}),
             (2.0, {name: 1 for name in inputs})]
    stimulus = VectorSequence(steps, slew=0.2, tail=4.0)
    from repro.core.engine import simulate

    result = simulate(chain3, stimulus, config=ddm_config(),
                      engine_kind=kind)
    assert result.stats.events_executed > 0


@pytest.mark.parametrize("kind", sorted(PURE_KINDS))
def test_pure_kinds_register_without_numpy(no_numpy, kind):
    registry = NetlistRegistry(max_netlists=4)
    handle = registry.register(
        "c17.%s" % kind, {"kind": "builtin", "name": "c17"},
        engine_kind=kind,
    )
    assert handle is not None
    assert len(registry) == 1


def test_all_kinds_validate_with_numpy():
    for kind in ALL_KINDS:
        SimulationConfig(engine_kind=kind).validate()


def test_server_registration_rejects_unknown_engine():
    registry = NetlistRegistry(max_netlists=4)
    with pytest.raises(ServerError) as excinfo:
        registry.register(
            "c17.bogus", {"kind": "builtin", "name": "c17"},
            engine_kind="bogus",
        )
    assert excinfo.value.kind == "bad-frame"
    for kind in ALL_KINDS:
        assert kind in str(excinfo.value)
