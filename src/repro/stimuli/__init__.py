"""Stimulus descriptions: vector sequences and pulse patterns."""

from .vectors import (
    PAPER_SEQUENCE_1,
    PAPER_SEQUENCE_2,
    VectorSequence,
    load_vector_batches,
    multiplication_sequence,
)
from .patterns import (
    glitch_pair,
    pulse,
    pulse_train,
    random_vector_batch,
    random_vectors,
)

__all__ = [
    "VectorSequence",
    "multiplication_sequence",
    "load_vector_batches",
    "PAPER_SEQUENCE_1",
    "PAPER_SEQUENCE_2",
    "pulse",
    "pulse_train",
    "glitch_pair",
    "random_vectors",
    "random_vector_batch",
]
