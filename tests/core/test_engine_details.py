"""Engine corner cases: filtered-event log, resolution, overlapping stimuli."""

import pytest

from repro.circuit import modules
from repro.circuit.builder import CircuitBuilder
from repro.config import ddm_config
from repro.core.engine import HalotisSimulator, simulate
from repro.stimuli.patterns import glitch_pair, pulse
from repro.stimuli.vectors import VectorSequence


def test_filtered_log_records_location():
    netlist = modules.inverter_chain(6)
    config = ddm_config(record_filtered=True)
    result = simulate(netlist, pulse("in", start=1.0, width=0.05),
                      config=config)
    assert result.stats.events_filtered >= 1
    record = result.simulator.filtered_log[0]
    assert record.gate_name in result.simulator.netlist.gates
    assert record.new_event_time <= record.previous_event_time + 1e-6
    assert record.net_name in result.simulator.netlist.nets


def test_filtered_log_empty_when_disabled():
    netlist = modules.inverter_chain(6)
    result = simulate(netlist, pulse("in", start=1.0, width=0.05),
                      config=ddm_config())
    assert result.stats.events_filtered >= 1
    assert result.simulator.filtered_log == []


def test_overlapping_input_ramps_annihilate_at_first_gate():
    """A pulse narrower than the input slew: the two source ramps overlap
    and the receiving input's threshold is never (or barely) crossed."""
    netlist = modules.inverter_chain(2)
    stimulus = pulse("in", start=1.0, width=0.05, slew=0.3)
    result = simulate(netlist, stimulus, config=ddm_config())
    assert result.traces["out2"].toggle_count() == 0


def test_glitch_pair_gap_collapses_under_degradation():
    """The degradation signature on a pulse pair: the *leading* edge of
    the second pulse propagates faster (small T since the gate's previous
    output transition), so the inter-pulse gap collapses at the output
    while a widely spaced pair keeps its gap."""
    netlist = modules.inverter_chain(2)
    close = glitch_pair("in", first_start=1.0, first_width=0.6, gap=0.15,
                        second_width=0.6, tail=6.0)
    apart = glitch_pair("in", first_start=1.0, first_width=0.6, gap=4.0,
                        second_width=0.6, tail=6.0)
    tight = simulate(netlist, close, config=ddm_config())
    loose = simulate(netlist, apart, config=ddm_config())
    tight_widths = tight.traces["out2"].pulse_widths()
    loose_widths = loose.traces["out2"].pulse_widths()
    assert len(tight_widths) == 3  # pulse, gap, pulse
    assert len(loose_widths) == 3
    # The tight pair's gap shrinks well below the 0.15 ns input gap...
    assert tight_widths[1] < 0.05
    # ...while the loose pair's gap is preserved (~4 ns).
    assert loose_widths[1] == pytest.approx(4.0, abs=0.3)


def test_equal_time_crossings_count_as_simultaneous():
    """Two opposite crossings within the time resolution annihilate."""
    builder = CircuitBuilder(name="res")
    a = builder.input("a")
    builder.output(builder.gate("INV", a, name="g"), "y")
    netlist = builder.build()
    config = ddm_config(time_resolution=0.01)
    simulator = HalotisSimulator(netlist, config=config)
    simulator.initialize({"a": 0})
    # Two source ramps whose mid-crossings differ by less than the
    # resolution at the receiving threshold.
    from repro.core.transition import Transition

    net = netlist.net("a")
    # INV threshold 2.40 V -> crossings at 0.996 ns (rise) and 1.004 ns
    # (fall): 8 ps apart, inside the 10 ps resolution.
    rise = Transition(t50=1.0, duration=0.2, rising=True, net_name="a")
    fall = Transition(t50=1.0, duration=0.2, rising=False, net_name="a")
    simulator._broadcast(rise, net)
    simulator._broadcast(fall, net)
    assert simulator.stats.events_filtered == 1
    assert len(simulator.queue) == 0


def test_simulate_seed_reaches_latch():
    latch = modules.rs_latch()
    stimulus = VectorSequence([(0.0, {"s_n": 1, "r_n": 1})], tail=2.0)
    result = simulate(latch, stimulus, config=ddm_config(),
                      seed={"q": 1, "qn": 0})
    assert result.final_values["q"] == 1
    assert result.final_values["qn"] == 0


def test_simulation_result_bundle(chain3):
    stimulus = pulse("in", start=1.0, width=2.0)
    result = simulate(chain3, stimulus, config=ddm_config())
    assert result.simulator.netlist is chain3
    assert result.stats is result.simulator.stats
    assert result.traces is result.simulator.traces
    assert set(result.final_values) == set(chain3.nets)


def test_horizon_tracks_run(chain3):
    stimulus = pulse("in", start=1.0, width=2.0, tail=10.0)
    result = simulate(chain3, stimulus, config=ddm_config())
    assert result.traces.horizon >= stimulus.horizon


def test_source_transition_slew_override(chain3):
    simulator = HalotisSimulator(chain3, config=ddm_config())
    simulator.initialize({"in": 0})
    transition = simulator.set_input("in", 1, at_time=1.0, slew=0.5)
    assert transition.duration == 0.5
    assert transition.t50 == pytest.approx(1.25)
