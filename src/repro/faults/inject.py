"""Engine-level fault injection with guaranteed restoration.

One netlist, many mutants: instead of copying the netlist per mutant
(which would re-lower it and throw away every warm kernel), injection
patches the *shared* structures in place —

* the raw cells (``gate.cell``), because DC initialisation and the
  reference engine evaluate them directly, and
* the cached :class:`~repro.core.compiled.CompiledNetlist` tables
  (``gate_tables`` / ``gate_functions`` / ``arc_rise`` / ``arc_fall``),
  because the compiled/vector/bitparallel engines execute from them —

then calls :meth:`CompiledNetlist.refresh_numpy_cache`, the sanctioned
mutation seam through the frozen read-only ``as_numpy()`` export, so
kernels holding references to the exported arrays observe the patch.
Restoration reverses all of it and re-syncs the export again; a
round-trip leaves the lowering bit-identical
(:func:`lowering_fingerprint` before == after), which the property
suite enforces.

Logic mutations (stuck-at, bit-flip) are expressed as
:class:`~repro.circuit.logic.TableFunction` stand-in cells so every
layer — DC init, per-event evaluation, re-lowering — computes the same
mutated function from one object.

SET pulses have no static patch at all: they are injected *into the
running engine* by broadcasting a flip/restore transition pair at the
fault instant, so the pulse fights the same inertial filter and
degradation model as any legitimate glitch.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from ..circuit.cells import CellSpec
from ..circuit.logic import GateFunctionLike, TableFunction
from ..circuit.netlist import Gate, Netlist
from ..core.engine import EngineBase, SimulationResult, run_stimulus
from ..core.stats import SimulationStatistics
from ..core.transition import Transition
from ..errors import FaultError
from ..stimuli.vectors import VectorSequence
from .faultload import FaultKind, FaultSpec

#: One lowered timing arc: (tp0, d_slew, tau, s_slew, tau_deg, t0_coef),
#: the shape ``CompiledNetlist.arc_rise`` / ``arc_fall`` store per pin.
_Arc = Tuple[float, float, float, float, float, float]

#: Test seam (the "teeth" check): when True, :meth:`FaultInjection.restore`
#: deliberately leaks the patch.  Exists so the suite can prove that a
#: restore leak is *caught* — by the fingerprint property and the parity
#: suites — never set outside tests.
LEAK_RESTORES = False


def lowering_fingerprint(netlist: Netlist) -> str:
    """SHA-256 over every array of the lowering's numpy export.

    The round-trip oracle: injection followed by restoration must leave
    this unchanged, byte for byte.
    """
    arrays = netlist.compile().as_numpy()
    digest = hashlib.sha256()
    for key in sorted(arrays):
        array = arrays[key]
        digest.update(key.encode())
        digest.update(array.tobytes())  # type: ignore[union-attr]
    return digest.hexdigest()


class FaultedStimulus:
    """A stimulus bundled with the single fault active while it plays.

    Duck-types the ``VectorSequence`` protocol by delegation and adds
    the ``fault`` attribute :func:`repro.core.engine.run_stimulus` keys
    on, so faulted vectors flow through every existing execution path —
    ``simulate()``, in-process batches, shard workers, warm service
    workers — without those paths learning anything about faults.
    Pickles like any stimulus (both halves are plain data).
    """

    __slots__ = ("stimulus", "fault")

    def __init__(self, stimulus: VectorSequence, fault: FaultSpec):
        self.stimulus = stimulus
        self.fault = fault

    def initial_values(self, netlist: Netlist) -> Dict[str, int]:
        return self.stimulus.initial_values(netlist)

    def iter_changes(self) -> Iterator[Tuple[float, Dict[str, int], Optional[float]]]:
        return self.stimulus.iter_changes()

    @property
    def horizon(self) -> float:
        return self.stimulus.horizon

    def __repr__(self) -> str:
        return "FaultedStimulus(%s)" % self.fault.describe()


class FaultInjection:
    """Apply one fault to a netlist's shared structures; restore exactly.

    Usage is always paired (``apply`` … ``restore``), normally through
    :func:`run_faulted_stimulus` or the ``patched_lowering`` test
    fixture, both of which restore in a ``finally``.  The handle
    snapshots original objects on ``apply()`` — the cell dataclass, the
    lowering's table list, function entry and arc tuples — so restore
    is plain reassignment, immune to whatever the patch did.
    """

    def __init__(self, netlist: Netlist, fault: FaultSpec):
        self.netlist = netlist
        self.fault = fault
        self.applied = False
        self._saved_cell: Optional[CellSpec] = None
        self._saved_table: Optional[List[int]] = None
        self._saved_function: Optional[GateFunctionLike] = None
        self._saved_arcs: List[Tuple[int, _Arc, _Arc]] = []

    # -- lifecycle -----------------------------------------------------

    def __enter__(self) -> FaultInjection:
        self.apply()
        return self

    def __exit__(self, *_exc_info: object) -> None:
        self.restore()

    @property
    def is_permanent(self) -> bool:
        """True when the fault patches the lowering (vs. run-time SET)."""
        return self.fault.kind in (
            FaultKind.STUCK_AT_0,
            FaultKind.STUCK_AT_1,
            FaultKind.BIT_FLIP,
            FaultKind.DELAY_DRIFT,
        )

    def _driver(self) -> Gate:
        net = self.netlist.nets.get(self.fault.net)
        if net is None:
            raise FaultError(
                "cannot inject into unknown net %r (circuit %s)"
                % (self.fault.net, self.netlist.name)
            )
        if net.driver is None:
            raise FaultError(
                "cannot inject into undriven net %r — primary inputs and "
                "constants have no gate to corrupt" % self.fault.net
            )
        return net.driver

    def apply(self) -> None:
        """Patch cells + lowering in place (idempotence guarded)."""
        if self.applied:
            raise FaultError("fault %s is already applied" % self.fault.describe())
        kind = self.fault.kind
        if kind in (FaultKind.NONE, FaultKind.SET_PULSE):
            # NONE is the identity mutant; SET pulses inject at run time
            # (see _run_with_pulse) — neither touches the lowering.
            self.applied = True
            return
        gate = self._driver()
        compiled = self.netlist.compile()
        index = gate.index
        if kind is FaultKind.DELAY_DRIFT:
            factor = self.fault.factor
            self._saved_cell = gate.cell
            gate.cell = dataclasses.replace(
                gate.cell,
                arcs={key: arc.scaled(factor) for key, arc in gate.cell.arcs.items()},
            )
            for gate_input in gate.inputs:
                uid = gate_input.uid
                rise = compiled.arc_rise[uid]
                fall = compiled.arc_fall[uid]
                self._saved_arcs.append((uid, rise, fall))
                # (tp0, d_slew, tau, s_slew, tau_deg, t0_coef): the
                # load-folded tp0/tau entries scale exactly like the
                # cell's d0/d_load/s0/s_load coefficients do.
                compiled.arc_rise[uid] = (
                    rise[0] * factor, rise[1], rise[2] * factor,
                    rise[3], rise[4], rise[5],
                )
                compiled.arc_fall[uid] = (
                    fall[0] * factor, fall[1], fall[2] * factor,
                    fall[3], fall[4], fall[5],
                )
        else:
            arity = len(gate.inputs)
            table = compiled.gate_tables[index]
            if table is None:
                raise FaultError(
                    "cannot inject %s: gate %r is too wide to table-patch "
                    "(%d inputs)" % (kind.value, gate.name, arity)
                )
            if kind is FaultKind.STUCK_AT_0:
                mutated = [0] * len(table)
            elif kind is FaultKind.STUCK_AT_1:
                mutated = [1] * len(table)
            else:  # BIT_FLIP
                mutated = [1 - value for value in table]
            stand_in = TableFunction(
                "%s:%s" % (kind.value, gate.cell.function.name), mutated
            )
            self._saved_cell = gate.cell
            self._saved_table = table
            self._saved_function = compiled.gate_functions[index]
            gate.cell = dataclasses.replace(gate.cell, function=stand_in)
            compiled.gate_tables[index] = mutated
            compiled.gate_functions[index] = stand_in
        compiled.refresh_numpy_cache()
        self.applied = True

    def restore(self) -> None:
        """Reverse :meth:`apply` exactly (no-op when never applied)."""
        if not self.applied:
            return
        if LEAK_RESTORES:
            # Teeth seam: pretend the restore happened.  The fingerprint
            # property and the cross-engine parity suites must catch the
            # leaked patch — that is the point of the seam.
            self.applied = False
            return
        kind = self.fault.kind
        if kind in (FaultKind.NONE, FaultKind.SET_PULSE):
            self.applied = False
            return
        gate = self._driver()
        compiled = self.netlist.compile()
        if self._saved_cell is not None:
            gate.cell = self._saved_cell
        if self._saved_table is not None and self._saved_function is not None:
            compiled.gate_tables[gate.index] = self._saved_table
            compiled.gate_functions[gate.index] = self._saved_function
            self._saved_table = None
            self._saved_function = None
        for uid, rise, fall in self._saved_arcs:
            compiled.arc_rise[uid] = rise
            compiled.arc_fall[uid] = fall
        self._saved_arcs = []
        self._saved_cell = None
        compiled.refresh_numpy_cache()
        self.applied = False


def run_faulted_stimulus(
    simulator: EngineBase,
    faulted: FaultedStimulus,
    settle: float = 0.0,
    seed: Optional[Mapping[str, int]] = None,
) -> SimulationResult:
    """Inject, run the base stimulus, restore — the faulted counterpart
    of :func:`repro.core.engine.run_stimulus` (which dispatches here).

    The STA oracle is suspended for the faulted run: a mutant's
    waveforms legitimately escape the *healthy* circuit's static
    envelope — that escape is often exactly the detection signal — so
    ``OracleError`` would be a false alarm, not a bug report.  The flag
    is restored with the lowering in the same ``finally``.
    """
    injection = FaultInjection(simulator.netlist, faulted.fault)
    config = simulator.config
    saved_check = config.check_sta_bounds
    injection.apply()
    if injection.is_permanent:
        simulator.rebind_lowering()
    config.check_sta_bounds = False
    try:
        if faulted.fault.kind is FaultKind.SET_PULSE:
            result = _run_with_pulse(
                simulator, faulted.stimulus, faulted.fault, settle, seed
            )
        else:
            result = run_stimulus(
                simulator, faulted.stimulus, settle=settle, seed=seed
            )
    finally:
        config.check_sta_bounds = saved_check
        injection.restore()
        if injection.is_permanent:
            # Drop the kernel built over the patched tables so the next
            # initialize() of this (reused, warm) engine rebuilds clean.
            simulator.rebind_lowering()
    return result


def _run_with_pulse(
    simulator: EngineBase,
    stimulus: VectorSequence,
    fault: FaultSpec,
    settle: float,
    seed: Optional[Mapping[str, int]],
) -> SimulationResult:
    """The run_stimulus loop with a SET pulse spliced into the timeline.

    At ``fault.time`` the target net's committed value is read and the
    complement is broadcast to the net's fanouts as an ordinary ramp;
    ``fault.width`` later the original value is broadcast back.  The
    driving gate keeps its state — only the receivers see the pulse —
    so downstream survival is decided entirely by the inertial filter
    and the degradation model, which is the HALOTIS-specific point of
    SET campaigns.
    """
    net = simulator.netlist.net(fault.net)
    slew = min(simulator.config.default_input_slew, fault.width)
    pulse_value: List[int] = []

    def fire(at_time: float, restore: bool) -> None:
        if restore:
            if not pulse_value:
                return
            value = pulse_value[0]
        else:
            value = 1 - simulator.value(fault.net)
            pulse_value.append(1 - value)
        simulator._broadcast_transition(
            Transition(
                t50=at_time,
                duration=slew,
                rising=value == 1,
                net_name=fault.net,
            ),
            net,
        )

    pulses = [(fault.time, False), (fault.time + fault.width, True)]
    simulator.stats = SimulationStatistics()
    simulator.initialize(stimulus.initial_values(simulator.netlist), seed=seed)
    for at_time, assignments, change_slew in stimulus.iter_changes():
        while pulses and pulses[0][0] <= at_time:
            pulse_time, restore = pulses.pop(0)
            simulator.run(until=pulse_time)
            fire(pulse_time, restore)
        simulator.run(until=at_time)
        simulator.apply_word(assignments, at_time, change_slew)
    for pulse_time, restore in pulses:
        simulator.run(until=pulse_time)
        fire(pulse_time, restore)
    simulator.run(until=stimulus.horizon + settle)
    simulator.run()
    return SimulationResult(
        traces=simulator.traces,
        stats=simulator.stats,
        final_values=simulator.values(),
        simulator=simulator,
    )
