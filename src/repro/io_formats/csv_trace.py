"""CSV export of digital and analog traces."""

from __future__ import annotations

import csv
import io
from typing import Optional, Sequence, Union

from ..analog.simulator import AnalogResult
from ..core.trace import TraceSet
from ..errors import AnalysisError


def write_trace_csv(
    traces: TraceSet,
    output: Union[str, io.TextIOBase],
    names: Optional[Sequence[str]] = None,
    sample_step: float = 0.05,
) -> None:
    """Sample digital traces on a regular grid and write one row per time.

    Columns: ``time_ns`` then one 0/1 column per net.
    """
    selected = list(names) if names is not None else traces.names()
    if traces.horizon <= 0.0:
        raise AnalysisError("trace set has no simulated horizon")
    times = []
    t = 0.0
    while t <= traces.horizon:
        times.append(round(t, 9))
        t += sample_step
    columns = {name: traces[name].sample(times) for name in selected}

    own_handle = isinstance(output, str)
    handle = open(output, "w", newline="") if own_handle else output
    try:
        writer = csv.writer(handle)
        writer.writerow(["time_ns"] + selected)
        for row_index, row_time in enumerate(times):
            writer.writerow(
                [row_time] + [columns[name][row_index] for name in selected]
            )
    finally:
        if own_handle:
            handle.close()


def write_analog_csv(
    result: AnalogResult,
    output: Union[str, io.TextIOBase],
    names: Optional[Sequence[str]] = None,
    stride: int = 1,
) -> None:
    """Write analog node voltages (one row per recorded sample)."""
    selected = list(names) if names is not None else list(result.net_columns)
    columns = [result.net_columns[name] for name in selected]
    own_handle = isinstance(output, str)
    handle = open(output, "w", newline="") if own_handle else output
    try:
        writer = csv.writer(handle)
        writer.writerow(["time_ns"] + selected)
        for row in range(0, len(result.times), stride):
            writer.writerow(
                ["%.6f" % result.times[row]]
                + ["%.4f" % result.voltages[row, c] for c in columns]
            )
    finally:
        if own_handle:
            handle.close()
