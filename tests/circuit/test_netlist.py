"""Netlist structure: connectivity, loads, ordering."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Netlist
from repro.errors import ConnectivityError, NetlistError


def _simple():
    builder = CircuitBuilder(name="simple")
    a = builder.input("a")
    b = builder.input("b")
    y = builder.nand(a, b, name="g1")
    z = builder.inv(y, name="g2")
    builder.output(z, "z")
    return builder.build()


def test_structure_counts():
    netlist = _simple()
    assert len(netlist.gates) == 2
    assert len(netlist.primary_inputs) == 2
    assert len(netlist.primary_outputs) == 1
    assert netlist.num_gate_inputs == 3


def test_driver_and_fanout_links():
    netlist = _simple()
    g1 = netlist.gate("g1")
    g2 = netlist.gate("g2")
    assert g1.output.fanouts[0].gate is g2
    assert g2.inputs[0].net is g1.output
    assert netlist.net("a").driver is None
    assert netlist.net("z").driver is g2


def test_gate_input_uids_are_dense():
    netlist = _simple()
    uids = sorted(gi.uid for gi in netlist.iter_gate_inputs())
    assert uids == list(range(netlist.num_gate_inputs))


def test_net_load_sums_pins_wire_and_driver_cap(library):
    builder = CircuitBuilder(name="loads")
    a = builder.input("a")
    mid = builder.net("mid", wire_cap=3.0)
    builder.gate("INV", a, output=mid, name="drv")
    builder.gate("NAND2", mid, mid, name="rdr")
    builder.output(builder.net("unused_out"), None)  # placeholder net
    netlist = builder.netlist
    inv = library.get("INV")
    nand2 = library.get("NAND2")
    expected = 3.0 + 2 * nand2.pins[0].cap + inv.output_cap
    assert netlist.net("mid").load() == pytest.approx(expected)


def test_pi_load_counts_reader_pins(library):
    netlist = _simple()
    nand2 = library.get("NAND2")
    assert netlist.net("a").load() == pytest.approx(nand2.pins[0].cap)


def test_duplicate_names_rejected():
    netlist = Netlist("dup")
    netlist.add_net("x")
    with pytest.raises(NetlistError):
        netlist.add_net("x")


def test_two_drivers_rejected(library):
    builder = CircuitBuilder(name="twodrv")
    a = builder.input("a")
    y = builder.inv(a)
    with pytest.raises(ConnectivityError):
        builder.gate("INV", a, output=y)


def test_driving_a_primary_input_rejected(library):
    builder = CircuitBuilder(name="drvpi")
    a = builder.input("a")
    b = builder.input("b")
    with pytest.raises(ConnectivityError):
        builder.gate("INV", a, output=b)


def test_arity_mismatch_rejected(library):
    builder = CircuitBuilder(name="arity")
    a = builder.input("a")
    with pytest.raises(ConnectivityError):
        builder.netlist.add_gate("g", library.get("NAND2"), [a], builder.net())


def test_vt_override_applied_and_validated(library):
    builder = CircuitBuilder(name="vt")
    a = builder.input("a")
    out = builder.gate("INV", a, vt_overrides={0: 3.0})
    gate = out.driver
    assert gate.inputs[0].vt == 3.0
    with pytest.raises(ConnectivityError):
        builder.gate("INV", a, vt_overrides={0: 9.0})


def test_constants():
    netlist = Netlist("const")
    tie = netlist.add_constant("tie0", 0)
    assert tie.is_constant
    assert tie.constant_value == 0
    with pytest.raises(NetlistError):
        netlist.add_constant("tie2", 2)


def test_topological_order_respects_dependencies():
    netlist = _simple()
    order = [g.name for g in netlist.topological_gates()]
    assert order.index("g1") < order.index("g2")


def test_topological_order_detects_cycles():
    from repro.circuit import modules

    latch = modules.rs_latch()
    with pytest.raises(NetlistError):
        latch.topological_gates()
    assert latch.has_cycle()
    assert not _simple().has_cycle()


def test_unknown_lookups_raise():
    netlist = _simple()
    with pytest.raises(NetlistError):
        netlist.net("nope")
    with pytest.raises(NetlistError):
        netlist.gate("nope")


def test_source_nets():
    netlist = _simple()
    sources = {n.name for n in netlist.source_nets()}
    assert sources == {"a", "b"}


def test_repr_smoke():
    netlist = _simple()
    assert "simple" in repr(netlist)
    assert "g1" in repr(netlist.gate("g1"))
    assert "a" in repr(netlist.net("a"))
    assert "g2" in repr(netlist.gate("g2").inputs[0])
