"""Stimulus descriptions: vector sequences and pulse patterns."""

from .vectors import (
    PAPER_SEQUENCE_1,
    PAPER_SEQUENCE_2,
    VectorSequence,
    multiplication_sequence,
)
from .patterns import glitch_pair, pulse, pulse_train, random_vectors

__all__ = [
    "VectorSequence",
    "multiplication_sequence",
    "PAPER_SEQUENCE_1",
    "PAPER_SEQUENCE_2",
    "pulse",
    "pulse_train",
    "glitch_pair",
    "random_vectors",
]
