"""Teeth tests for HL001 — frozen-lowering mutation detection."""

from __future__ import annotations

from conftest import findings_for

MOD = "src/repro/core/consumer.py"


def test_subscript_store_into_export_attribute_fires(lint_tree):
    result = lint_tree({MOD: """
        def tweak(compiled):
            compiled.arc_rise[3] = 0.5
    """})
    (finding,) = findings_for(result, "HL001")
    assert finding.file == MOD
    assert finding.line == 3
    assert "arc_rise" in finding.message


def test_store_through_as_numpy_dict_key_fires(lint_tree):
    result = lint_tree({MOD: """
        def tweak(exports):
            exports["net_load"][0] = 1.0
    """})
    (finding,) = findings_for(result, "HL001")
    assert "net_load" in finding.message


def test_aliased_export_is_tracked_within_the_function(lint_tree):
    result = lint_tree({MOD: """
        def tweak(exports):
            arr = exports["gate_tables"]
            arr[0] = 7
    """})
    (finding,) = findings_for(result, "HL001")
    assert finding.line == 4
    assert "gate_tables" in finding.message


def test_writeable_flag_lift_fires(lint_tree):
    result = lint_tree({MOD: """
        def unfreeze(view):
            view.flags.writeable = True
    """})
    (finding,) = findings_for(result, "HL001")
    assert "writeable" in finding.message


def test_setattr_and_inplace_method_fire(lint_tree):
    result = lint_tree({MOD: """
        def tweak(compiled):
            setattr(compiled, "arc_fall", None)
            compiled.net_driver.fill(0)
    """})
    messages = [f.message for f in findings_for(result, "HL001")]
    assert len(messages) == 2
    assert any("setattr" in m for m in messages)
    assert any(".fill()" in m for m in messages)


def test_sanctioned_seams_do_not_fire(lint_tree):
    result = lint_tree({
        # The owning module may rebuild its arrays freely.
        "src/repro/core/compiled.py": """
            def rebuild(self):
                self.arc_rise[0] = 1.0
        """,
        # ... as may a refresh_numpy_cache() seam anywhere.
        MOD: """
            def refresh_numpy_cache(compiled):
                compiled.arc_rise[0] = 1.0
        """,
    })
    assert findings_for(result, "HL001") == []


def test_reading_exports_is_fine(lint_tree):
    result = lint_tree({MOD: """
        def total_load(exports):
            return float(exports["net_load"].sum())
    """})
    assert findings_for(result, "HL001") == []


def test_allow_directive_suppresses_one_line(lint_tree):
    result = lint_tree({MOD: """
        def tweak(compiled):
            compiled.arc_rise[3] = 0.5  # halolint: allow(HL001)
    """})
    assert findings_for(result, "HL001") == []


def test_disabling_the_rule_loses_the_teeth(lint_tree):
    bad = {MOD: """
        def tweak(compiled):
            compiled.arc_rise[3] = 0.5
    """}
    assert findings_for(lint_tree(bad), "HL001")
    assert not findings_for(lint_tree(bad, disabled=["HL001"]), "HL001")
