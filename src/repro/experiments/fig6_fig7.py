"""Paper Figures 6 and 7: multiplier waveforms, three engines.

For one operand sequence the driver simulates the Figure 5 multiplier
with (a) the analog substitute, (b) HALOTIS-DDM and (c) HALOTIS-CDM, and
reports:

* the settled output word at the end of every vector period (all three
  must agree with the integer product),
* output-bus activity (surviving edges) per engine — the paper's visual
  point is that panel (c) shows many more transitions than (a)/(b),
* per-output-net edge agreement between DDM and the digitised analog
  waveforms,
* the three ASCII waveform panels.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from ..analysis.ascii_art import render_waveforms
from ..analysis.compare import EdgeMatch, match_edges
from ..config import DelayMode
from . import common


@dataclasses.dataclass
class Fig6Result:
    """Everything needed to reproduce one of the two waveform figures."""

    which: int
    label: str
    expected_words: List[int]
    analog_words: Optional[List[int]]
    ddm_words: List[int]
    cdm_words: List[int]
    analog_out_edges: Optional[int]
    ddm_out_edges: int
    cdm_out_edges: int
    ddm_vs_analog: Optional[Dict[str, EdgeMatch]]
    panels: Dict[str, str]

    @property
    def settled_ok(self) -> bool:
        engines = [self.ddm_words, self.cdm_words]
        if self.analog_words is not None:
            engines.append(self.analog_words)
        return all(words == self.expected_words for words in engines)

    @property
    def mean_ddm_analog_agreement(self) -> Optional[float]:
        if not self.ddm_vs_analog:
            return None
        values = [match.agreement for match in self.ddm_vs_analog.values()]
        return sum(values) / len(values)

    def format(self) -> str:
        lines = [
            "Figure %d — multiplication sequence %s" % (5 + self.which, self.label),
            "",
            "settled output words (end of each 5 ns period):",
            "  expected : %s" % self.expected_words,
        ]
        if self.analog_words is not None:
            lines.append("  analog   : %s" % self.analog_words)
        lines += [
            "  DDM      : %s" % self.ddm_words,
            "  CDM      : %s" % self.cdm_words,
            "",
            "output-bus edges: analog=%s  DDM=%d  CDM=%d"
            % (self.analog_out_edges, self.ddm_out_edges, self.cdm_out_edges),
        ]
        agreement = self.mean_ddm_analog_agreement
        if agreement is not None:
            lines.append(
                "mean DDM-vs-analog edge agreement on outputs: %.2f" % agreement
            )
        lines.append("")
        for title, panel in self.panels.items():
            lines.append(title)
            lines.append(panel)
            lines.append("")
        return "\n".join(lines)


def run(
    which: int = 1,
    include_analog: bool = True,
    include_panels: bool = True,
    analog_dt: float = common.ANALOG_DT,
    edge_tolerance: float = 0.5,
) -> Fig6Result:
    """Reproduce Figure 6 (``which=1``) or Figure 7 (``which=2``)."""
    label = common.SEQUENCE_LABELS[which]
    outputs = common.output_nets()

    ddm = common.run_halotis(which, DelayMode.DDM)
    cdm = common.run_halotis(which, DelayMode.CDM)
    ddm_words = common.settled_words_logic(ddm, which)
    cdm_words = common.settled_words_logic(cdm, which)

    analog_words = None
    analog_out_edges = None
    ddm_vs_analog = None
    analog_edges: Dict[str, list] = {}
    analog_result = None
    if include_analog:
        analog_result = common.run_analog(which, dt=analog_dt)
        analog_words = common.settled_words_analog(analog_result, which)
        analog_edges = {
            name: analog_result.waveform(name).digitize() for name in outputs
        }
        analog_out_edges = sum(len(edges) for edges in analog_edges.values())
        ddm_vs_analog = {
            name: match_edges(
                ddm.traces[name].edges(), analog_edges[name], edge_tolerance
            )
            for name in outputs
        }

    panels: Dict[str, str] = {}
    if include_panels:
        window = (0.0, len(common.SEQUENCE_OPERANDS[which]) * common.PERIOD)
        display = list(reversed(outputs))  # s7 on top, as in the paper
        if include_analog and analog_result is not None:
            panels["(a) analog"] = render_waveforms(
                {
                    name: (
                        analog_result.waveform(name).initial_value(),
                        analog_edges[name],
                    )
                    for name in display
                },
                *window, order=display,
            )
        panels["(b) HALOTIS-DDM"] = render_waveforms(
            {
                name: (ddm.traces[name].initial_value, ddm.traces[name].edges())
                for name in display
            },
            *window, order=display,
        )
        panels["(c) HALOTIS-CDM"] = render_waveforms(
            {
                name: (cdm.traces[name].initial_value, cdm.traces[name].edges())
                for name in display
            },
            *window, order=display,
        )

    return Fig6Result(
        which=which,
        label=label,
        expected_words=common.expected_words(which),
        analog_words=analog_words,
        ddm_words=ddm_words,
        cdm_words=cdm_words,
        analog_out_edges=analog_out_edges,
        ddm_out_edges=sum(ddm.traces[n].toggle_count() for n in outputs),
        cdm_out_edges=sum(cdm.traces[n].toggle_count() for n in outputs),
        ddm_vs_analog=ddm_vs_analog,
        panels=panels,
    )
