"""Process-corner derivation for cell libraries.

Real sign-off simulates at several process/voltage/temperature corners.
This module derives corner variants of a library by scaling the timing
arcs and shifting the input thresholds — enough to study how corners move
the glitch-filtering behaviour of the IDDM (benchmark ``test_corners``).

Scaling rules (first-order, documented rather than physical):

* delays and output slews scale by ``delay_scale`` (slow corner > 1),
* degradation ``A``/``B`` scale with delay (a slower gate also recovers
  more slowly), ``C`` is untouched,
* input thresholds shift by ``vt_shift`` volts (NMOS/PMOS imbalance).
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import LibraryError
from .cells import CellSpec, DegradationSpec, PinSpec, TimingArcSpec
from .library import CellLibrary


@dataclasses.dataclass(frozen=True)
class Corner:
    """One process corner description."""

    name: str
    delay_scale: float
    vt_shift: float = 0.0

    def validate(self) -> None:
        if self.delay_scale <= 0.0:
            raise LibraryError("delay_scale must be positive")


#: The classic three-corner set, with mild threshold shifts.
STANDARD_CORNERS: Dict[str, Corner] = {
    "ff": Corner("ff", delay_scale=0.80, vt_shift=-0.10),
    "tt": Corner("tt", delay_scale=1.00, vt_shift=0.00),
    "ss": Corner("ss", delay_scale=1.25, vt_shift=+0.10),
}


def _scale_arc(arc: TimingArcSpec, scale: float) -> TimingArcSpec:
    degradation = DegradationSpec(
        a=arc.degradation.a * scale,
        b=arc.degradation.b * scale,
        c=arc.degradation.c,
    )
    return TimingArcSpec(
        d0=arc.d0 * scale,
        d_load=arc.d_load * scale,
        d_slew=arc.d_slew,
        s0=arc.s0 * scale,
        s_load=arc.s_load * scale,
        s_slew=arc.s_slew,
        degradation=degradation,
    )


def derate_cell(cell: CellSpec, corner: Corner, vdd: float) -> CellSpec:
    """Return ``cell`` scaled to ``corner`` (same name)."""
    corner.validate()
    pins = []
    for pin in cell.pins:
        shifted = pin.vt + corner.vt_shift
        margin = 0.05 * vdd
        shifted = min(max(shifted, margin), vdd - margin)
        pins.append(PinSpec(name=pin.name, cap=pin.cap, vt=shifted))
    arcs = {
        key: _scale_arc(arc, corner.delay_scale)
        for key, arc in cell.arcs.items()
    }
    return dataclasses.replace(cell, pins=tuple(pins), arcs=arcs)


def derate_library(library: CellLibrary, corner: Corner) -> CellLibrary:
    """Derive a full corner library (named ``<base>_<corner>``).

    Cell names are preserved so netlists built against the base library
    can be re-elaborated at any corner without edits.
    """
    corner.validate()
    derived = CellLibrary("%s_%s" % (library.name, corner.name), library.vdd)
    for cell in library:
        derived.add(derate_cell(cell, corner, library.vdd))
    return derived


def corner_library(library: CellLibrary, corner_name: str) -> CellLibrary:
    """Convenience lookup into :data:`STANDARD_CORNERS`."""
    try:
        corner = STANDARD_CORNERS[corner_name]
    except KeyError:
        raise LibraryError(
            "unknown corner %r (choose from %s)"
            % (corner_name, sorted(STANDARD_CORNERS))
        ) from None
    return derate_library(library, corner)
