"""Paper Table 2 — CPU time: electrical vs logic simulation.

pytest-benchmark times HALOTIS-DDM and HALOTIS-CDM directly; the analog
engine is timed once (it is the 100x+ column).  Shape assertions:

* analog / DDM >= 100x (paper: ~290x with HSPICE),
* DDM is not slower than CDM beyond 25% noise (paper: DDM is ~30% faster
  because degradation removes events).
"""

import time

import pytest

from repro.config import DelayMode
from repro.experiments import common

_ANALOG_SECONDS = {}


def _analog_seconds(which) -> float:
    if which not in _ANALOG_SECONDS:
        start = time.perf_counter()
        common.run_analog(which, record_stride=50)
        _ANALOG_SECONDS[which] = time.perf_counter() - start
    return _ANALOG_SECONDS[which]


@pytest.mark.parametrize("which", [1, 2], ids=["seq1", "seq2"])
def test_table2_ddm_speed(benchmark, which):
    result = benchmark(
        common.run_halotis, which, DelayMode.DDM, record_traces=False
    )
    assert result.stats.events_executed > 0
    ddm_seconds = benchmark.stats["mean"]
    analog_seconds = _analog_seconds(which)
    speedup = analog_seconds / ddm_seconds
    print(
        "\nTable2[%s]: analog=%.2fs DDM=%.4fs -> %.0fx "
        "(paper: %.1fs / %.2fs -> %.0fx)"
        % (
            common.SEQUENCE_LABELS[which], analog_seconds, ddm_seconds,
            speedup,
            common.PAPER_TABLE2[which][0], common.PAPER_TABLE2[which][1],
            common.PAPER_TABLE2[which][0] / common.PAPER_TABLE2[which][1],
        )
    )
    assert speedup >= 100.0, (
        "logic simulation must be >= 2 orders of magnitude faster than "
        "the electrical engine (measured %.0fx)" % speedup
    )


@pytest.mark.parametrize("which", [1, 2], ids=["seq1", "seq2"])
def test_table2_cdm_speed(benchmark, which):
    benchmark(common.run_halotis, which, DelayMode.CDM, record_traces=False)


@pytest.mark.parametrize("which", [1, 2], ids=["seq1", "seq2"])
def test_table2_ddm_not_slower_than_cdm(benchmark, which):
    """The paper's counter-intuitive result: the more accurate model is
    also the faster one."""

    def timed_pair():
        start = time.perf_counter()
        common.run_halotis(which, DelayMode.DDM, record_traces=False)
        ddm_seconds = time.perf_counter() - start
        start = time.perf_counter()
        common.run_halotis(which, DelayMode.CDM, record_traces=False)
        cdm_seconds = time.perf_counter() - start
        return ddm_seconds, cdm_seconds

    # Best-of-five to suppress scheduler noise.
    pairs = [timed_pair() for _ in range(5)]
    benchmark(timed_pair)
    best_ddm = min(p[0] for p in pairs)
    best_cdm = min(p[1] for p in pairs)
    assert best_ddm <= best_cdm * 1.25, (
        "DDM should not be slower than CDM (paper: 0.39 vs 0.55 s); "
        "measured %.4f vs %.4f s" % (best_ddm, best_cdm)
    )
