"""Phase timers and a ``@timed`` decorator for hot-path-safe sampling.

The discipline enforced across the codebase: time is *sampled* with
``perf_counter()`` stamps at phase boundaries and *published* once per
run/task/request.  Nothing here belongs inside a per-event loop.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from .registry import Histogram, MetricsRegistry, get_registry

__all__ = ["PhaseTimer", "timed"]

F = TypeVar("F", bound=Callable[..., Any])


class PhaseTimer:
    """Accumulates named phase durations across one logical operation.

    Usage::

        timer = PhaseTimer(enabled=config.collect_metrics)
        with timer.phase("initialize"):
            ...
        with timer.phase("stimulus"):
            ...
        timer.publish(histogram, engine=kind)   # one observe per phase

    When disabled, ``phase()`` returns a shared no-op context manager
    and the whole object costs two attribute checks per phase — cheap
    enough to leave in the compiled hot path unconditionally.
    """

    __slots__ = ("enabled", "_phases", "_started")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._phases: List[Tuple[str, float]] = []
        self._started = time.perf_counter() if enabled else 0.0

    def phase(self, name: str) -> _Phase:
        if not self.enabled:
            return _NOOP_PHASE
        return _Phase(self, name)

    def record(self, name: str, seconds: float) -> None:
        if self.enabled:
            self._phases.append((name, seconds))

    def elapsed(self) -> float:
        if not self.enabled:
            return 0.0
        return time.perf_counter() - self._started

    def phases(self) -> Dict[str, float]:
        """Phase name -> accumulated seconds (same-name phases sum)."""
        out: Dict[str, float] = {}
        for name, seconds in self._phases:
            out[name] = out.get(name, 0.0) + seconds
        return out

    def publish(self, histogram: Histogram, **labels: str) -> None:
        """One ``observe`` per distinct phase, labelled ``phase=<name>``
        on top of the caller's labels."""
        if not self.enabled:
            return
        for name, seconds in self.phases().items():
            histogram.observe(seconds, phase=name, **labels)


class _Phase:
    __slots__ = ("_timer", "_name", "_t0")

    def __init__(self, timer: Optional[PhaseTimer], name: str = ""):
        self._timer = timer
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> _Phase:
        if self._timer is not None:
            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._timer is not None:
            self._timer.record(self._name, time.perf_counter() - self._t0)


_NOOP_PHASE = _Phase(None)


def timed(
    name: str,
    help_text: str = "",
    registry: Optional[MetricsRegistry] = None,
    **labels: str,
) -> Callable[[F], F]:
    """Decorator: observe the wrapped call's wall time into a histogram.

    The histogram is resolved lazily on first call (so decorating at
    import time never races registry setup) and the labels are fixed at
    decoration time — use it on coarse operations (a CLI subcommand, a
    maintenance sweep), never inside per-event code.
    """

    def decorate(func: F) -> F:
        holder: List[Histogram] = []

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            target = registry if registry is not None else get_registry()
            if not target.enabled:
                return func(*args, **kwargs)
            if not holder:
                holder.append(
                    target.histogram(
                        name, help_text, label_names=tuple(sorted(labels))
                    )
                )
            t0 = time.perf_counter()
            try:
                return func(*args, **kwargs)
            finally:
                holder[0].observe(time.perf_counter() - t0, **labels)

        return wrapper  # type: ignore[return-value]

    return decorate
