"""Analog models of the primitive CMOS gates.

Each primitive cell is a complementary gate: a pull-down network of NMOS
devices to ground and the dual pull-up network of PMOS devices to VDD.
The simulator only needs the *net current* a gate injects into its output
node given the input and output voltages:

* inverter — one device each side;
* NAND — series pull-down (modelled as a single device whose gate drive
  is the weakest input and whose width is the per-device width divided by
  the stack depth), parallel pull-up (sum of per-input currents);
* NOR — the mirror image.

The series-stack collapse is the standard first-order approximation: it
preserves the properties that matter here (current vanishes when any
series input is off; the stack is as strong as its weakest drive; sizing
``wn = stack_depth`` restores inverter-equivalent strength).

Per-cell device widths also realise the skewed inverters ``INV_LT`` /
``INV_HT`` whose DC thresholds the Figure 1 experiment relies on.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from ..errors import LibraryError
from .device import MosfetParams, mosfet_current
from .technology import Technology


@dataclasses.dataclass(frozen=True)
class AnalogCell:
    """Analog description of one primitive cell.

    Attributes:
        name: library cell name this models.
        kind: ``"inv"``, ``"nand"`` or ``"nor"``.
        num_inputs: stack depth / input count.
        wn / wp: per-device NMOS / PMOS widths (unit-inverter relative).
    """

    name: str
    kind: str
    num_inputs: int
    wn: float
    wp: float


#: Analog models for every cell the expansion pass can emit.  The skewed
#: inverters' width ratios put their DC switching thresholds near the
#: library's VT values (1.6 V / 3.4 V); verified by unit tests against
#: :func:`repro.analog.device.dc_inverter_threshold`.
ANALOG_CELLS: Dict[str, AnalogCell] = {
    "INV": AnalogCell("INV", "inv", 1, wn=1.0, wp=1.0),
    "INV_LT": AnalogCell("INV_LT", "inv", 1, wn=1.0, wp=0.23),
    "INV_HT": AnalogCell("INV_HT", "inv", 1, wn=0.40, wp=2.50),
    "INV_X2": AnalogCell("INV_X2", "inv", 1, wn=2.0, wp=2.0),
    "NAND2": AnalogCell("NAND2", "nand", 2, wn=2.0, wp=1.0),
    "NAND2_X2": AnalogCell("NAND2_X2", "nand", 2, wn=4.0, wp=2.0),
    "NAND3": AnalogCell("NAND3", "nand", 3, wn=3.0, wp=1.0),
    "NAND4": AnalogCell("NAND4", "nand", 4, wn=4.0, wp=1.0),
    "NOR2": AnalogCell("NOR2", "nor", 2, wn=1.0, wp=2.0),
    "NOR3": AnalogCell("NOR3", "nor", 3, wn=1.0, wp=3.0),
}


def analog_cell(name: str) -> AnalogCell:
    try:
        return ANALOG_CELLS[name]
    except KeyError:
        raise LibraryError(
            "cell %r has no analog model; expand the netlist to primitives "
            "first (repro.circuit.expand)" % name
        ) from None


def output_current(
    cell: AnalogCell,
    tech: Technology,
    vin: np.ndarray,
    vout: np.ndarray,
) -> np.ndarray:
    """Net current (uA) into the output node, vectorised over instances.

    Args:
        cell: the analog cell (all instances share widths).
        tech: process constants.
        vin: input voltages, shape ``(instances, num_inputs)``.
        vout: output voltages, shape ``(instances,)``.

    Returns positive values when the gate charges the node (pull-up wins).
    """
    nparams = MosfetParams.nmos(tech)
    pparams = MosfetParams.pmos(tech)
    vdd = tech.vdd

    if cell.kind == "inv":
        vg = vin[:, 0]
        pull_down = mosfet_current(nparams, vg, vout, cell.wn)
        pull_up = mosfet_current(pparams, vdd - vg, vdd - vout, cell.wp)
    elif cell.kind == "nand":
        effective_drive = vin.min(axis=1)
        series_width = cell.wn / cell.num_inputs
        pull_down = mosfet_current(nparams, effective_drive, vout, series_width)
        pull_up = np.zeros_like(vout)
        for pin in range(cell.num_inputs):
            pull_up = pull_up + mosfet_current(
                pparams, vdd - vin[:, pin], vdd - vout, cell.wp
            )
    elif cell.kind == "nor":
        effective_drive = vdd - vin.max(axis=1)
        series_width = cell.wp / cell.num_inputs
        pull_up = mosfet_current(pparams, effective_drive, vdd - vout, series_width)
        pull_down = np.zeros_like(vout)
        for pin in range(cell.num_inputs):
            pull_down = pull_down + mosfet_current(
                nparams, vin[:, pin], vout, cell.wn
            )
    else:  # pragma: no cover - ANALOG_CELLS only contains the three kinds
        raise LibraryError("unknown analog cell kind %r" % cell.kind)

    # Tiny symmetric leak keeps node voltages bounded and the ODE smooth
    # near the rails.
    leak = tech.leak * ((vdd - vout) - vout)
    return pull_up - pull_down + leak


def dc_threshold(cell: AnalogCell, tech: Technology, pin: int,
                 tolerance: float = 1e-4) -> float:
    """Switching threshold of ``pin``: the input voltage at which the gate
    current balances with the output held at VDD/2, the other inputs tied
    to their non-controlling values.

    This generalises :func:`repro.analog.device.dc_inverter_threshold` to
    stacked gates and is what the characterisation flow reports as each
    pin's ``VT``.
    """
    if not 0 <= pin < cell.num_inputs:
        raise LibraryError("pin %d out of range for %s" % (pin, cell.name))
    vdd = tech.vdd
    non_controlling = vdd if cell.kind in ("inv", "nand") else 0.0
    vout = np.array([vdd / 2.0])

    def net_current(v_pin: float) -> float:
        vin = np.full((1, cell.num_inputs), non_controlling)
        vin[0, pin] = v_pin
        return float(output_current(cell, tech, vin, vout)[0])

    # net_current is monotone decreasing in v_pin for inv/nand (rising
    # input turns pull-down on) and also decreasing for nor.  Bisect for
    # the zero crossing.
    low, high = 0.0, vdd
    while high - low > tolerance:
        mid = 0.5 * (low + high)
        if net_current(mid) <= 0.0:
            high = mid
        else:
            low = mid
    return 0.5 * (low + high)
