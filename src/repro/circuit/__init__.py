"""Circuit substrate: netlists, gate library, generators and I/O.

This subpackage provides everything HALOTIS needs below the delay engine:

* :mod:`repro.circuit.logic` — boolean evaluation of gate functions,
* :mod:`repro.circuit.netlist` — the ``Netlist`` / ``Net`` / ``Gate`` /
  ``GateInput`` structures (the paper's Figure 2 class diagram),
* :mod:`repro.circuit.cells` / :mod:`repro.circuit.library` — timing cells
  with per-pin thresholds and degradation parameters,
* :mod:`repro.circuit.builder` — a fluent construction API,
* :mod:`repro.circuit.modules` — generators for the paper's circuits
  (inverter chains, full adders, the Figure 5 array multiplier, ...),
* :mod:`repro.circuit.bench_io` — ISCAS-85 ``.bench`` reader/writer,
* :mod:`repro.circuit.validate` — electrical rule checks.
"""

from .logic import GateFunction, evaluate
from .netlist import Gate, GateInput, Net, Netlist
from .cells import CellSpec, DegradationSpec, PinSpec, TimingArcSpec
from .library import CellLibrary, default_library
from .builder import CircuitBuilder
from . import modules

__all__ = [
    "GateFunction",
    "evaluate",
    "Gate",
    "GateInput",
    "Net",
    "Netlist",
    "CellSpec",
    "DegradationSpec",
    "PinSpec",
    "TimingArcSpec",
    "CellLibrary",
    "default_library",
    "CircuitBuilder",
    "modules",
]
