"""CircuitBuilder conveniences and validation hooks."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.errors import NetlistError, UnknownCellError


def test_input_bus_lsb_first():
    builder = CircuitBuilder(name="bus")
    bus = builder.input_bus("a", 4)
    assert [net.name for net in bus] == ["a0", "a1", "a2", "a3"]
    assert all(net.is_primary_input for net in bus)


def test_output_bus_renames():
    builder = CircuitBuilder(name="obus")
    a = builder.input("a")
    nets = [builder.inv(a), builder.inv(a)]
    outs = builder.output_bus(nets, "y")
    assert [net.name for net in outs] == ["y0", "y1"]
    assert all(net.is_primary_output for net in outs)


def test_output_rename_conflict_rejected():
    builder = CircuitBuilder(name="conflict")
    a = builder.input("a")
    y = builder.inv(a)
    with pytest.raises(NetlistError):
        builder.output(y, "a")


def test_constants_are_shared():
    builder = CircuitBuilder(name="ties")
    assert builder.constant(0) is builder.constant(0)
    assert builder.constant(1) is builder.constant(1)
    assert builder.constant(0) is not builder.constant(1)


def test_auto_names_unique():
    builder = CircuitBuilder(name="auto")
    a = builder.input("a")
    first = builder.inv(a)
    second = builder.inv(a)
    assert first.name != second.name
    gate_names = set(builder.netlist.gates)
    assert len(gate_names) == 2


def test_gate_with_explicit_output_and_name():
    builder = CircuitBuilder(name="explicit")
    a = builder.input("a")
    out = builder.net("myout")
    result = builder.gate("INV", a, output=out, name="mygate")
    assert result is out
    assert builder.netlist.gate("mygate").output is out


def test_convenience_wrappers_pick_cells():
    builder = CircuitBuilder(name="conv")
    a = builder.input("a")
    b = builder.input("b")
    c = builder.input("c")
    assert builder.nand(a, b).driver.cell.name == "NAND2"
    assert builder.nand(a, b, c).driver.cell.name == "NAND3"
    assert builder.nor(a, b).driver.cell.name == "NOR2"
    assert builder.and_(a, b, c).driver.cell.name == "AND3"
    assert builder.xor(a, b).driver.cell.name == "XOR2"
    assert builder.mux(a, b, c).driver.cell.name == "MUX2"
    assert builder.buf(a).driver.cell.name == "BUF"


def test_unknown_arity_raises():
    builder = CircuitBuilder(name="wide")
    nets = [builder.input("i%d" % k) for k in range(5)]
    with pytest.raises(UnknownCellError):
        builder.nand(*nets)


def test_build_validates_by_default():
    builder = CircuitBuilder(name="invalid")
    builder.input("a")
    builder.net("floating")  # undriven internal net
    with pytest.raises(NetlistError):
        builder.build()
    # The same netlist passes with checks disabled.
    assert builder.build(check=False) is builder.netlist


def test_build_allows_cycles_when_requested():
    builder = CircuitBuilder(name="loop")
    a = builder.input("en")
    fb = builder.net("fb")
    mid = builder.gate("NAND2", a, fb, name="g0")
    builder.gate("INV", mid, output=fb, name="g1")
    builder.output(fb, None)
    with pytest.raises(NetlistError):
        builder.build()
    netlist = builder.build(allow_cycles=True)
    assert netlist.has_cycle()
