"""The halolint rule registry.

Each rule module registers itself with the :func:`rule` decorator; the
CLI runs every registered rule and ``docs/static_analysis.md``'s drift
guard (``tests/test_docs.py``) checks the catalogue against this
registry, mirroring the observability-doc guard.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Iterator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.findings import Finding

    from .engine import Project

    CheckFunction = Callable[["Project"], Iterator["Finding"]]
else:
    CheckFunction = Callable


@dataclasses.dataclass(frozen=True)
class Rule:
    """One registered invariant check.

    ``invariant`` is the one-line contract the rule enforces (quoted in
    the doc catalogue); ``rationale`` says why the invariant exists —
    usually the bug that motivated it.
    """

    id: str
    name: str
    invariant: str
    rationale: str
    check: CheckFunction

    def to_dict(self) -> Dict[str, str]:
        return {
            "id": self.id,
            "name": self.name,
            "invariant": self.invariant,
            "rationale": self.rationale,
        }


#: rule id → :class:`Rule`; populated by importing :mod:`tools.halolint.rules`.
RULES: Dict[str, Rule] = {}


def rule(
    id: str, name: str, invariant: str, rationale: str
) -> Callable[[CheckFunction], CheckFunction]:
    """Register ``check`` under ``id``; the decorator the rule modules use."""

    def register(check: CheckFunction) -> CheckFunction:
        if id in RULES:
            raise ValueError("duplicate halolint rule id %r" % id)
        RULES[id] = Rule(
            id=id, name=name, invariant=invariant,
            rationale=rationale, check=check,
        )
        return check

    return register


def load_rules() -> Dict[str, Rule]:
    """Import every rule module (idempotent) and return the registry."""
    from . import rules  # noqa: F401  (import populates RULES)

    return RULES


def iter_rules(disabled: Iterable[str] = ()) -> Iterator[Rule]:
    """Registered rules in id order, minus ``disabled`` ids."""
    skip = set(disabled)
    for rule_id in sorted(load_rules()):
        if rule_id not in skip:
            yield RULES[rule_id]
