"""Ablation B — the degradation curve: eq. 1 vs the analog substrate.

Measures tp(T) for a single inverter on the electrical engine and checks
that the exponential law of eq. 1 describes it: the fitted curve must
track the measurements over the degraded region, and a narrow pulse must
propagate visibly faster than a recovered one.

Also sweeps input pulse width through a 6-stage chain on both the DDM
engine and the analog engine and asserts they agree on the *survival
boundary* within one sweep step — the circuit-level consequence of the
degradation model.
"""

import pytest

from repro.analog import characterize as ch
from repro.analog.simulator import AnalogSimulator
from repro.circuit import modules
from repro.config import ddm_config
from repro.core.engine import simulate
from repro.stimuli.patterns import pulse

WIDTHS = [w / 100.0 for w in range(8, 40, 2)]


@pytest.mark.analog
def test_eq1_fits_measured_curve(benchmark):
    fit = benchmark.pedantic(
        ch.fit_degradation_curve,
        args=("INV", 0, True),
        kwargs={"extra_load": 20.0, "tau_in": 0.2, "dt": 0.004},
        rounds=1, iterations=1,
    )
    assert fit.tau > 0.0
    degraded = [p for p in fit.points if p.tp < 0.95 * fit.tp0]
    assert degraded, "the sweep must reach the degraded region"
    for point in fit.points:
        predicted = fit.predicted_tp(point.elapsed)
        assert predicted == pytest.approx(point.tp, abs=0.35 * fit.tp0), (
            "eq. 1 must track the measured curve at T=%.3f" % point.elapsed
        )
    narrowest = min(fit.points, key=lambda p: p.elapsed)
    assert narrowest.tp < 0.8 * fit.tp0


@pytest.mark.analog
def test_survival_boundary_matches_analog(benchmark):
    """The pulse width at which a 6-stage chain stops propagating must
    agree between DDM and the analog engine within one sweep step."""
    netlist = modules.inverter_chain(6)

    def ddm_boundary():
        for width in WIDTHS:
            result = simulate(
                netlist, pulse("in", start=1.0, width=width),
                config=ddm_config(),
            )
            if result.traces["out6"].toggle_count() >= 2:
                return width
        return None

    def analog_boundary():
        simulator = AnalogSimulator(netlist, dt=0.004)
        for width in WIDTHS:
            stimulus = pulse("in", start=1.0, width=width, tail=4.0)
            result = simulator.run(stimulus)
            if len(result.waveform("out6").digitize()) >= 2:
                return width
        return None

    ddm_width = benchmark.pedantic(ddm_boundary, rounds=1, iterations=1)
    analog_width = analog_boundary()
    print(
        "\nAblation B: survival boundary DDM=%s ns analog=%s ns"
        % (ddm_width, analog_width)
    )
    assert ddm_width is not None
    assert analog_width is not None
    step = WIDTHS[1] - WIDTHS[0]
    # The shipped degradation parameters are *effective* circuit-level
    # values (they also stand in for multi-input collision effects the
    # two-transition model cannot represent), so on a bare regenerating
    # chain the DDM over-filters: it must never pass a pulse the analog
    # engine kills, and may kill up to ~0.25 ns more (EXPERIMENTS.md,
    # ablation B).
    assert ddm_width >= analog_width - step - 1e-9
    assert ddm_width - analog_width <= 0.25 + 1e-9


def test_cdm_has_no_survival_boundary(benchmark):
    """Without degradation every pulse wider than a couple of gate delays
    survives the whole chain — the boundary collapses to the trivial
    inertial one."""
    from repro.config import cdm_config

    netlist = modules.inverter_chain(6)

    def boundary():
        for width in WIDTHS:
            result = simulate(
                netlist, pulse("in", start=1.0, width=width),
                config=cdm_config(),
            )
            if result.traces["out6"].toggle_count() >= 2:
                return width
        return None

    cdm_width = benchmark(boundary)
    assert cdm_width is not None
    assert cdm_width <= WIDTHS[2], (
        "CDM propagates almost any pulse; its boundary must sit at the "
        "bottom of the sweep"
    )
