"""Paper Figure 3 — one transition, one event per receiving threshold.

Asserts the figure's event table (ordering by threshold on a falling
ramp) and times the kernel's event-generation primitive at high fanout.
"""

from repro.circuit.builder import CircuitBuilder
from repro.config import ddm_config
from repro.core.engine import HalotisSimulator
from repro.core.transition import Transition
from repro.experiments import fig3


def test_fig3_event_table(benchmark):
    result = benchmark(fig3.run)
    assert [row.gate for row in result.rows] == ["G2", "G3", "G1"]
    thresholds = [row.threshold_v for row in result.rows]
    assert thresholds == sorted(thresholds, reverse=True), (
        "a falling ramp must cross the highest threshold first"
    )
    times = [row.time for row in result.rows]
    assert times == sorted(times)
    assert len(result.rows) == 3


def test_broadcast_throughput_high_fanout(benchmark):
    """Event generation cost for one transition driving 64 inputs."""
    builder = CircuitBuilder(name="fanout64")
    source = builder.input("src")
    for index in range(64):
        cell = ("INV", "INV_LT", "INV_HT")[index % 3]
        builder.output(
            builder.gate(cell, source, name="g%d" % index), "o%d" % index
        )
    netlist = builder.build()
    simulator = HalotisSimulator(netlist, config=ddm_config())
    simulator.initialize({"src": 1})
    net = netlist.net("src")

    counter = [0]

    def broadcast_once():
        counter[0] += 1
        transition = Transition(
            t50=float(counter[0]), duration=0.3,
            rising=(counter[0] % 2 == 0), net_name="src",
        )
        simulator._broadcast(transition, net)

    benchmark(broadcast_once)
    assert simulator.stats.events_scheduled >= 64
