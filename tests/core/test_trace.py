"""Net traces: edge derivation, sampling, pulse widths."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.trace import NetTrace, TraceSet
from repro.core.transition import Transition
from repro.errors import AnalysisError


def _rise(t50, duration=0.2):
    return Transition(t50=t50, duration=duration, rising=True, net_name="x")


def _fall(t50, duration=0.2):
    return Transition(t50=t50, duration=duration, rising=False, net_name="x")


def test_initial_value_validated():
    with pytest.raises(ValueError):
        NetTrace("x", 2)


def test_edges_simple_alternation():
    trace = NetTrace("x", 0)
    trace.append(_rise(1.0))
    trace.append(_fall(2.0))
    trace.append(_rise(3.0))
    assert trace.edges() == [(1.0, 1), (2.0, 0), (3.0, 1)]
    assert trace.toggle_count() == 3
    assert trace.raw_count() == 3


def test_edges_cancel_reversed_pair():
    """A degraded transition scheduled not-after its predecessor removes
    both — the zero-width-pulse rule."""
    trace = NetTrace("x", 0)
    trace.append(_rise(2.0))
    trace.append(_fall(1.5))  # reversal in the past: runt pulse
    assert trace.edges() == []
    assert trace.toggle_count() == 0
    assert trace.raw_count() == 2


def test_edges_cancel_nested_runts():
    trace = NetTrace("x", 0)
    trace.append(_rise(1.0))
    trace.append(_fall(3.0))
    trace.append(_rise(2.9))   # runt pair with previous fall
    trace.append(_fall(2.85))  # and again
    assert trace.edges() == [(1.0, 1), (2.85, 0)]


def test_value_at_and_sampling():
    trace = NetTrace("x", 1)
    trace.append(_fall(1.0))
    trace.append(_rise(4.0))
    assert trace.value_at(0.5) == 1
    assert trace.value_at(1.0) == 0
    assert trace.value_at(3.999) == 0
    assert trace.value_at(10.0) == 1
    assert trace.sample([0.0, 1.5, 4.5]) == [1, 0, 1]


def test_sample_requires_sorted_times():
    trace = NetTrace("x", 0)
    with pytest.raises(AnalysisError):
        trace.sample([1.0, 0.5])


def test_pulse_widths():
    trace = NetTrace("x", 0)
    trace.append(_rise(1.0))
    trace.append(_fall(1.4))
    trace.append(_rise(5.0))
    trace.append(_fall(7.0))
    assert trace.pulse_widths() == pytest.approx([0.4, 3.6, 2.0])


def test_analog_fraction_reconstruction():
    trace = NetTrace("x", 0)
    trace.append(_rise(1.0, duration=0.4))
    assert trace.analog_fraction_at(0.0) == 0.0
    assert trace.analog_fraction_at(1.0) == pytest.approx(0.5)
    assert trace.analog_fraction_at(2.0) == 1.0


def test_trace_set_basics():
    traces = TraceSet(vdd=5.0)
    trace = traces.create("a", 0)
    assert "a" in traces
    assert traces["a"] is trace
    assert traces.names() == ["a"]
    assert len(traces) == 1
    with pytest.raises(AnalysisError):
        traces.create("a", 0)
    with pytest.raises(AnalysisError):
        traces["missing"]


def test_trace_set_word_at():
    traces = TraceSet(vdd=5.0)
    for bit in range(4):
        traces.create("s%d" % bit, 0)
    traces["s1"].append(_rise(1.0))
    traces["s3"].append(_rise(2.0))
    assert traces.word_at(0.5, "s", 4) == 0
    assert traces.word_at(1.5, "s", 4) == 0b0010
    assert traces.word_at(2.5, "s", 4) == 0b1010


def test_trace_set_totals():
    traces = TraceSet(vdd=5.0)
    traces.create("a0", 0).append(_rise(1.0))
    traces.create("b", 0)
    traces["b"].append(_rise(1.0))
    traces["b"].append(_fall(2.0))
    assert traces.total_toggles() == 3
    assert traces.total_toggles(["b"]) == 2
    assert traces.bus_toggles("a", 1) == 1


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=100.0),
        min_size=0, max_size=30,
    )
)
def test_edges_always_strictly_increasing_and_alternating(t50s):
    """However adversarial the emission times, the derived digital view is
    a legal waveform: strictly increasing times, alternating values."""
    trace = NetTrace("x", 0)
    rising = True
    for t50 in t50s:
        trace.append(
            Transition(t50=t50, duration=0.1, rising=rising, net_name="x")
        )
        rising = not rising
    edges = trace.edges()
    times = [t for t, _v in edges]
    values = [v for _t, v in edges]
    assert times == sorted(times)
    assert all(a < b for a, b in zip(times, times[1:]))
    expected = 1
    for value in values:
        assert value == expected
        expected = 1 - expected
