"""Static timing analysis over the compiled lowering.

One topological pass over a :class:`~repro.core.compiled.CompiledNetlist`
(CSR fanout + load-folded delay arcs) computes, per net, a **window**
``[arrival_min, arrival_max]`` of mid-swing (t50) times — relative to the
causal primary-input launch — that any dynamically simulated transition
on that net can take, plus a slew interval ``[slew_min, slew_max]`` for
its ramp durations, plus the K most critical launch-to-endpoint paths
with per-arc attribution.

The windows are *sound by construction* for every engine and both delay
modes: each recursion step hulls over both output edges, both endpoints
of the fanin slew interval, and the configured inertial policy's event
shifts (the PEAK_VOLTAGE corrected time may precede the nominal crossing
by up to one input duration), and the delay-mode bounds bracket the
kernel's arithmetic (DDM degradation never shrinks a delay below
``min_delay``; CDM floors at ``min_delay``).  An engine whose word-level
contract holds events back (the bit-parallel batch hold) declares a
per-arc ``arc_slack`` that widens every upper bound.

That soundness is what makes the analyzer a cross-engine **oracle**:
:func:`verify_result` asserts that every transition of a recorded
simulation lies inside its net's window, that every ramp duration lies
inside the slew interval, that per-net transition counts obey the
broadcast conservation law, and that activity amplification (glitch
birth) only happens on nets whose driver has at least two statically
transitioning pins — the reconvergence sites the hazard pass
(:mod:`repro.analysis.hazards`) flags.  ``SimulationConfig
(check_sta_bounds=True)`` runs this after every ``simulate()`` /
``simulate_batch()`` on any engine.
"""

from __future__ import annotations

import contextlib
import dataclasses
import time as _time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import DelayMode, InertialPolicy, SimulationConfig
from ..errors import AnalysisError, OracleError
from .report import Table

#: Sentinels of an empty window (a net that can never transition).
_NEVER_MIN = float("inf")
_NEVER_MAX = float("-inf")


@dataclasses.dataclass(frozen=True)
class NetWindow:
    """Static bounds for one net's dynamic transitions.

    Arrival bounds are mid-swing (t50) times relative to the causal
    primary-input launch's own t50; slew bounds are ramp durations in
    ns.  ``can_transition`` False marks a net no stimulus can ever
    toggle (constants, nets fed only by constants); its arrival window
    is the empty sentinel pair ``(inf, -inf)``.
    """

    name: str
    can_transition: bool
    arrival_min: float
    arrival_max: float
    slew_min: float
    slew_max: float

    @property
    def width(self) -> float:
        """Window width (the net's static path-delay skew)."""
        if not self.can_transition:
            return 0.0
        return self.arrival_max - self.arrival_min

    def to_dict(self) -> Dict[str, object]:
        return {
            "net": self.name,
            "can_transition": self.can_transition,
            "arrival_min": self.arrival_min,
            "arrival_max": self.arrival_max,
            "slew_min": self.slew_min,
            "slew_max": self.slew_max,
        }


@dataclasses.dataclass(frozen=True)
class PathStep:
    """One arc of a critical path: ``from_net`` through ``gate`` pin
    ``pin`` onto ``to_net``, taking ``arc_delay`` (the max-corner
    nominal delay including any engine slack) and arriving at
    ``arrival`` (relative to the launch t50)."""

    gate: str
    pin: int
    from_net: str
    to_net: str
    arc_delay: float
    arrival: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "gate": self.gate,
            "pin": self.pin,
            "from_net": self.from_net,
            "to_net": self.to_net,
            "arc_delay": self.arc_delay,
            "arrival": self.arrival,
        }


@dataclasses.dataclass(frozen=True)
class CriticalPath:
    """A launch-to-endpoint max-arrival path, launch first."""

    endpoint: str
    arrival_max: float
    steps: Tuple[PathStep, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "endpoint": self.endpoint,
            "arrival_max": self.arrival_max,
            "steps": [step.to_dict() for step in self.steps],
        }


@dataclasses.dataclass
class StaReport:
    """Result of :func:`analyze` — windows, slews, critical paths."""

    netlist_name: str
    num_gates: int
    num_nets: int
    delay_mode: str
    inertial_policy: str
    min_delay: float
    time_resolution: float
    input_slew: Tuple[float, float]
    arc_slack: float
    windows: Dict[str, NetWindow]
    critical_paths: List[CriticalPath]
    analysis_seconds: float

    def window(self, net_name: str) -> NetWindow:
        try:
            return self.windows[net_name]
        except KeyError:
            raise AnalysisError(
                "no STA window for net %r" % net_name
            ) from None

    def to_dict(self) -> Dict[str, object]:
        return {
            "netlist": self.netlist_name,
            "gates": self.num_gates,
            "nets": self.num_nets,
            "delay_mode": self.delay_mode,
            "inertial_policy": self.inertial_policy,
            "min_delay": self.min_delay,
            "time_resolution": self.time_resolution,
            "input_slew": list(self.input_slew),
            "arc_slack": self.arc_slack,
            "analysis_seconds": self.analysis_seconds,
            "windows": [
                self.windows[name].to_dict() for name in sorted(self.windows)
            ],
            "critical_paths": [
                path.to_dict() for path in self.critical_paths
            ],
        }

    def format(self, max_windows: int = 20) -> str:
        """Human-readable report: summary, top windows, critical paths."""
        lines = [
            "STA over %r (%d gates, %d nets) — mode %s, policy %s, "
            "input slew %.3f..%.3f ns"
            % (
                self.netlist_name,
                self.num_gates,
                self.num_nets,
                self.delay_mode,
                self.inertial_policy,
                self.input_slew[0],
                self.input_slew[1],
            ),
        ]
        if self.arc_slack:
            lines.append("per-arc engine slack: %.6f ns" % self.arc_slack)
        reachable = [
            window
            for window in self.windows.values()
            if window.can_transition
        ]
        reachable.sort(key=lambda window: -window.arrival_max)
        table = Table(
            ["net", "arrival min (ns)", "arrival max (ns)", "skew (ns)",
             "slew min (ns)", "slew max (ns)"],
            title="latest-arriving nets (%d of %d reachable)"
            % (min(max_windows, len(reachable)), len(reachable)),
        )
        for window in reachable[:max_windows]:
            table.add_row([
                window.name,
                "%.4f" % window.arrival_min,
                "%.4f" % window.arrival_max,
                "%.4f" % window.width,
                "%.4f" % window.slew_min,
                "%.4f" % window.slew_max,
            ])
        lines.append(table.render())
        for rank, path in enumerate(self.critical_paths, start=1):
            lines.append(
                "critical path #%d -> %s (arrival max %.4f ns):"
                % (rank, path.endpoint, path.arrival_max)
            )
            for step in path.steps:
                lines.append(
                    "  %s -[%s pin %d, +%.4f ns]-> %s  @ %.4f ns"
                    % (
                        step.from_net,
                        step.gate,
                        step.pin,
                        step.arc_delay,
                        step.to_net,
                        step.arrival,
                    )
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the topological window pass
# ----------------------------------------------------------------------

def _lower(circuit: Any) -> Any:
    """Accept a Netlist (lower via its cache) or a CompiledNetlist."""
    compile_method = getattr(circuit, "compile", None)
    if callable(compile_method):
        return compile_method()
    return circuit


def _slew_interval(
    config: SimulationConfig,
    input_slew: Optional[Tuple[float, float]],
) -> Tuple[float, float]:
    if input_slew is None:
        slew = config.default_input_slew
        return (slew, slew)
    low, high = float(input_slew[0]), float(input_slew[1])
    if low <= 0.0 or high < low:
        raise AnalysisError(
            "input_slew must be a (low, high) interval with 0 < low <= "
            "high, got (%r, %r)" % (input_slew[0], input_slew[1])
        )
    return (low, high)


def analyze(
    circuit: Any,
    config: Optional[SimulationConfig] = None,
    input_slew: Optional[Tuple[float, float]] = None,
    arc_slack: float = 0.0,
    k_paths: int = 4,
) -> StaReport:
    """One topological STA pass over ``circuit``.

    Args:
        circuit: a :class:`~repro.circuit.netlist.Netlist` (lowered via
            its cached ``compile()``) or an already-built
            :class:`~repro.core.compiled.CompiledNetlist`.
        config: supplies the delay mode, inertial policy, ``min_delay``
            and ``time_resolution`` (default: HALOTIS-DDM defaults).
        input_slew: ``(low, high)`` interval of primary-input ramp
            durations the windows must cover; None uses the config's
            ``default_input_slew`` as a point interval.
        arc_slack: extra per-arc upper-bound slack in ns (engines whose
            batch contract holds events back declare this through
            ``EngineBase.sta_time_slack``).
        k_paths: how many critical launch-to-endpoint paths to extract.

    Raises:
        AnalysisError: combinational cycles (windows are defined over a
            topological order; feedback circuits have none).
    """
    if config is None:
        config = SimulationConfig()
    if arc_slack < 0.0:
        raise AnalysisError("arc_slack must be >= 0, got %r" % arc_slack)
    started = _time.perf_counter()
    compiled = _lower(circuit)
    slew_low, slew_high = _slew_interval(config, input_slew)
    try:
        order = compiled.topological_order()
    except Exception as error:
        raise AnalysisError(
            "static timing analysis needs an acyclic circuit: %s" % error
        ) from None

    windows, predecessors = _window_pass(
        compiled,
        order,
        use_ddm=config.delay_mode is DelayMode.DDM,
        peak_policy=config.inertial_policy is InertialPolicy.PEAK_VOLTAGE,
        min_delay=config.min_delay,
        resolution=config.time_resolution,
        slew_low=slew_low,
        slew_high=slew_high,
        arc_slack=arc_slack,
    )
    paths = _critical_paths(compiled, windows, predecessors, k_paths)
    netlist = compiled.netlist
    return StaReport(
        netlist_name=netlist.name if netlist is not None else "<detached>",
        num_gates=compiled.num_gates,
        num_nets=compiled.num_nets,
        delay_mode=config.delay_mode.value,
        inertial_policy=config.inertial_policy.value,
        min_delay=config.min_delay,
        time_resolution=config.time_resolution,
        input_slew=(slew_low, slew_high),
        arc_slack=arc_slack,
        windows=windows,
        critical_paths=paths,
        analysis_seconds=_time.perf_counter() - started,
    )


def _window_pass(
    compiled: Any,
    order: Sequence[int],
    use_ddm: bool,
    peak_policy: bool,
    min_delay: float,
    resolution: float,
    slew_low: float,
    slew_high: float,
    arc_slack: float,
) -> Tuple[Dict[str, NetWindow], Dict[int, Tuple[int, float]]]:
    """The single forward pass: per-net windows + max-arc attribution.

    Per gate input ``u`` fed by net ``m`` with window ``W(m)``, any
    executed event time lies in::

        evt_min(u) = W(m).arrival_min - W(m).slew_max * |f - 0.5|
                     [- W(m).slew_max under PEAK_VOLTAGE]
        evt_max(u) = W(m).arrival_max + W(m).slew_max * |f - 0.5|
                     [+ resolution under PEAK_VOLTAGE]

    (``f`` is the input's VT fraction; the crossing offset hulls over
    both edges, PEAK_VOLTAGE's corrected time may precede the crossing
    by at most one input duration and its floor may push at most one
    resolution past it; late events only ever move *later* but stay
    below the causing net's ``arrival_max``).  The output transition of
    the driven gate then lands in ``[evt_min + tp_lo, evt_max + tp_hi]``
    where ``tp_lo/tp_hi`` bracket the configured delay mode over the
    fanin slew hull, ``tp_hi`` widened by ``arc_slack``.
    """
    num_nets = compiled.num_nets
    net_names = compiled.net_names
    net_constant = compiled.net_constant
    net_is_pi = compiled.net_is_pi
    vt_fraction = compiled.vt_fraction
    input_net = compiled.input_net
    gate_offsets = compiled.gate_input_offsets
    gate_output_net = compiled.gate_output_net
    arc_rise = compiled.arc_rise
    arc_fall = compiled.arc_fall

    arrival_min = [_NEVER_MIN] * num_nets
    arrival_max = [_NEVER_MAX] * num_nets
    slew_min = [0.0] * num_nets
    slew_max = [0.0] * num_nets
    alive = [False] * num_nets

    for index in range(num_nets):
        if net_constant[index] is not None:
            continue
        if net_is_pi[index]:
            alive[index] = True
            arrival_min[index] = 0.0
            arrival_max[index] = 0.0
            slew_min[index] = slew_low
            slew_max[index] = slew_high

    predecessors: Dict[int, Tuple[int, float]] = {}
    for gate in order:
        out_net = gate_output_net[gate]
        out_min = _NEVER_MIN
        out_max = _NEVER_MAX
        out_slew_min = _NEVER_MIN
        out_slew_max = _NEVER_MAX
        out_alive = False
        best: Optional[Tuple[int, float]] = None
        for uid in range(gate_offsets[gate], gate_offsets[gate + 1]):
            fanin = input_net[uid]
            if not alive[fanin]:
                continue
            out_alive = True
            offset = abs(vt_fraction[uid] - 0.5) * slew_max[fanin]
            evt_min = arrival_min[fanin] - offset
            evt_max = arrival_max[fanin] + offset
            if peak_policy:
                evt_min -= slew_max[fanin]
                evt_max += resolution
            # The inlined twin of CompiledNetlist.arc_delay_bounds():
            # the hull over (rise, fall) x (slew_min, slew_max) of the
            # affine arc responses.  Inlined because this is the hot
            # loop of the whole analyzer (one evaluation per gate input)
            # and the call + tuple overhead measurably dominates it.
            in_slew_lo = slew_min[fanin]
            in_slew_hi = slew_max[fanin]
            rise = arc_rise[uid]
            fall = arc_fall[uid]
            tp0_r, d_r, tau0_r, s_r = rise[0], rise[1], rise[2], rise[3]
            tp0_f, d_f, tau0_f, s_f = fall[0], fall[1], fall[2], fall[3]
            tp_nom_min = tp_nom_max = tp0_r + d_r * in_slew_lo
            tau_min = tau_max = tau0_r + s_r * in_slew_lo
            for tp, tau_out in (
                (tp0_r + d_r * in_slew_hi, tau0_r + s_r * in_slew_hi),
                (tp0_f + d_f * in_slew_lo, tau0_f + s_f * in_slew_lo),
                (tp0_f + d_f * in_slew_hi, tau0_f + s_f * in_slew_hi),
            ):
                if tp < tp_nom_min:
                    tp_nom_min = tp
                elif tp > tp_nom_max:
                    tp_nom_max = tp
                if tau_out < tau_min:
                    tau_min = tau_out
                elif tau_out > tau_max:
                    tau_max = tau_out
            if use_ddm:
                # Degradation only ever shrinks the delay, floored at
                # min_delay; the nominal value is the undegraded max.
                tp_lo = min_delay
            else:
                tp_lo = tp_nom_min if tp_nom_min > min_delay else min_delay
            tp_hi = tp_nom_max if tp_nom_max > min_delay else min_delay
            tp_hi += arc_slack
            candidate_min = evt_min + tp_lo
            candidate_max = evt_max + tp_hi
            if candidate_min < out_min:
                out_min = candidate_min
            if candidate_max > out_max:
                out_max = candidate_max
                best = (uid, tp_hi)
            if tau_min < out_slew_min:
                out_slew_min = tau_min
            if tau_max > out_slew_max:
                out_slew_max = tau_max
        if not out_alive:
            continue
        alive[out_net] = True
        arrival_min[out_net] = out_min
        arrival_max[out_net] = out_max
        slew_min[out_net] = out_slew_min if out_slew_min > 0.0 else 0.0
        slew_max[out_net] = out_slew_max
        if best is not None:
            predecessors[out_net] = best

    windows = {
        net_names[index]: NetWindow(
            name=net_names[index],
            can_transition=alive[index],
            arrival_min=arrival_min[index],
            arrival_max=arrival_max[index],
            slew_min=slew_min[index],
            slew_max=slew_max[index],
        )
        for index in range(num_nets)
    }
    return windows, predecessors


def _critical_paths(
    compiled: Any,
    windows: Dict[str, NetWindow],
    predecessors: Dict[int, Tuple[int, float]],
    k_paths: int,
) -> List[CriticalPath]:
    """Backtrack the max-arc chain from the K latest endpoints.

    Endpoints are the primary outputs that can transition; circuits
    without reachable primary outputs fall back to every reachable
    driven net.  Each endpoint contributes its (single) max-arrival
    path, so the K paths attribute the K worst endpoint arrivals.
    """
    if k_paths <= 0:
        return []
    net_names = compiled.net_names
    net_is_po = compiled.net_is_po
    input_gate = compiled.input_gate
    input_pin = compiled.input_pin
    input_net = compiled.input_net
    gate_names = compiled.gate_names

    endpoints = [
        index
        for index in range(compiled.num_nets)
        if net_is_po[index] and windows[net_names[index]].can_transition
    ]
    if not endpoints:
        endpoints = [
            index
            for index in predecessors
            if windows[net_names[index]].can_transition
        ]
    endpoints.sort(key=lambda index: -windows[net_names[index]].arrival_max)

    paths: List[CriticalPath] = []
    for endpoint in endpoints[:k_paths]:
        steps: List[PathStep] = []
        cursor = endpoint
        while cursor in predecessors:
            uid, tp_hi = predecessors[cursor]
            fanin = input_net[uid]
            steps.append(
                PathStep(
                    gate=gate_names[input_gate[uid]],
                    pin=input_pin[uid],
                    from_net=net_names[fanin],
                    to_net=net_names[cursor],
                    arc_delay=tp_hi,
                    arrival=windows[net_names[cursor]].arrival_max,
                )
            )
            cursor = fanin
        steps.reverse()
        paths.append(
            CriticalPath(
                endpoint=net_names[endpoint],
                arrival_max=windows[net_names[endpoint]].arrival_max,
                steps=tuple(steps),
            )
        )
    return paths


# ----------------------------------------------------------------------
# the cross-engine oracle
# ----------------------------------------------------------------------

def windows_for(
    netlist: Any,
    config: SimulationConfig,
    input_slew: Tuple[float, float],
    arc_slack: float = 0.0,
) -> StaReport:
    """Cached :func:`analyze` for the oracle's repeated verifications.

    The report is memoised on the netlist instance keyed by its
    structure version and every knob the windows depend on; the stash
    never pickles (``Netlist.__reduce__`` snapshots a fixed field set),
    so worker processes simply rebuild their own.
    """
    version = getattr(netlist, "_structure_version", None)
    if version is None:
        return analyze(
            netlist, config, input_slew=input_slew, arc_slack=arc_slack,
            k_paths=0,
        )
    key = (
        version,
        config.delay_mode.value,
        config.inertial_policy.value,
        config.min_delay,
        config.time_resolution,
        input_slew[0],
        input_slew[1],
        arc_slack,
    )
    cache: Dict[Tuple[object, ...], StaReport]
    cache = getattr(netlist, "_sta_window_cache", None) or {}
    report = cache.get(key)
    if report is None:
        report = analyze(
            netlist, config, input_slew=input_slew, arc_slack=arc_slack,
            k_paths=0,
        )
        cache[key] = report
        with contextlib.suppress(AttributeError):  # slotted stand-ins
            netlist._sta_window_cache = cache
    return report


def _stimulus_launches(
    stimulus: Any, config: SimulationConfig
) -> Tuple[List[float], List[float]]:
    """Mid-swing launch times and effective slews of a stimulus."""
    launches: List[float] = []
    slews: List[float] = []
    for at_time, _assignments, slew in stimulus.iter_changes():
        effective = slew if slew is not None else config.default_input_slew
        launches.append(at_time + 0.5 * effective)
        slews.append(effective)
    return launches, slews


def verify_result(
    netlist: Any,
    stimulus: Any,
    result: Any,
    config: SimulationConfig,
    arc_slack: float = 0.0,
    launch_window: Optional[Tuple[float, float]] = None,
    input_slew: Optional[Tuple[float, float]] = None,
    tolerance: float = 1e-9,
    max_violations: int = 5,
) -> StaReport:
    """Assert one recorded simulation lies inside its static envelope.

    Checks, per net:

    1. every recorded transition's t50 lies in ``[first_launch +
       arrival_min - tol, last_launch + arrival_max + tol]``, and nets
       that can never transition recorded none;
    2. every ramp duration lies in ``[slew_min - tol, slew_max + tol]``;
    3. transition counts obey broadcast conservation — a gate emits at
       most as many transitions as its pins received;
    4. activity amplification (more output transitions than any single
       fanin carried) only happens where the driver has >= 2 statically
       transitioning pins — the hazard pass's generator candidates.

    ``launch_window`` / ``input_slew`` override the per-stimulus launch
    hull — lockstep word engines merge lanes, so batch verification
    passes the union over the whole batch.  Returns the
    :class:`StaReport` used (handy for diagnostics); raises
    :class:`~repro.errors.OracleError` on any violation.
    """
    traces = getattr(result, "traces", None)
    if traces is None or not len(traces):
        raise OracleError(
            "the STA oracle needs recorded traces; run with "
            "record_traces=True"
        )
    launches, slews = _stimulus_launches(stimulus, config)
    if input_slew is not None:
        slew_interval = input_slew
    elif slews:
        slew_interval = (min(slews), max(slews))
    else:
        slew_interval = (
            config.default_input_slew, config.default_input_slew
        )
    report = windows_for(
        netlist, config, slew_interval, arc_slack=arc_slack
    )
    windows = report.windows

    first_launch: Optional[float] = None
    last_launch: Optional[float] = None
    if launch_window is not None:
        first_launch, last_launch = launch_window
    elif launches:
        first_launch, last_launch = min(launches), max(launches)

    violations: List[str] = []

    def record(message: str) -> None:
        violations.append(message)

    counts: Dict[str, int] = {}
    for trace in traces:
        counts[trace.net_name] = len(trace.transitions)

    for trace in traces:
        window = windows.get(trace.net_name)
        if window is None:  # pragma: no cover - traces mirror the nets
            continue
        if not trace.transitions:
            continue
        if not window.can_transition:
            record(
                "net %r can never transition statically but recorded %d "
                "transition(s)" % (trace.net_name, len(trace.transitions))
            )
            continue
        if first_launch is None or last_launch is None:
            record(
                "stimulus drives no input changes but net %r recorded %d "
                "transition(s)" % (trace.net_name, len(trace.transitions))
            )
            continue
        low = first_launch + window.arrival_min - tolerance
        high = last_launch + window.arrival_max + tolerance
        slew_low = window.slew_min - tolerance
        slew_high = window.slew_max + tolerance
        for transition in trace.transitions:
            if not low <= transition.t50 <= high:
                record(
                    "net %r transition at t50=%.6f ns outside its static "
                    "window [%.6f, %.6f] ns"
                    % (trace.net_name, transition.t50, low, high)
                )
                break
        for transition in trace.transitions:
            if not slew_low <= transition.duration <= slew_high:
                record(
                    "net %r ramp duration %.6f ns outside its static slew "
                    "interval [%.6f, %.6f] ns"
                    % (trace.net_name, transition.duration,
                       slew_low, slew_high)
                )
                break

    compiled = _lower(netlist)
    net_names = compiled.net_names
    input_net = compiled.input_net
    gate_offsets = compiled.gate_input_offsets
    gate_output_net = compiled.gate_output_net
    gate_names = compiled.gate_names
    for gate in range(compiled.num_gates):
        out_name = net_names[gate_output_net[gate]]
        out_count = counts.get(out_name, 0)
        if not out_count:
            continue
        pin_counts = [
            counts.get(net_names[input_net[uid]], 0)
            for uid in range(gate_offsets[gate], gate_offsets[gate + 1])
        ]
        active_pins = sum(
            1
            for uid in range(gate_offsets[gate], gate_offsets[gate + 1])
            if windows[net_names[input_net[uid]]].can_transition
        )
        if out_count > sum(pin_counts):
            record(
                "gate %r emitted %d transition(s) on %r but its pins "
                "only received %d — broadcast conservation violated"
                % (gate_names[gate], out_count, out_name, sum(pin_counts))
            )
        elif out_count > max(pin_counts, default=0) and active_pins < 2:
            record(
                "net %r amplified activity (%d transitions vs <= %d on "
                "its single transitioning fanin) without being a "
                "statically flagged hazard generator"
                % (out_name, out_count, max(pin_counts, default=0))
            )

    if violations:
        shown = violations[:max_violations]
        suffix = (
            "" if len(violations) <= max_violations
            else " (+%d more)" % (len(violations) - max_violations)
        )
        raise OracleError(
            "STA oracle: %d violation(s) on %r%s:\n  - %s"
            % (
                len(violations),
                report.netlist_name,
                suffix,
                "\n  - ".join(shown),
            )
        )
    return report
