"""Command-line interface."""

import json

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "tech06" in out
    assert "NAND2" in out
    assert "mult4" in out


def test_simulate_builtin(capsys):
    assert main(["simulate", "--circuit", "c17", "--vectors", "4"]) == 0
    out = capsys.readouterr().out
    assert "HALOTIS-DDM" in out
    assert "events executed" in out


def test_simulate_cdm_mode(capsys):
    assert main([
        "simulate", "--circuit", "chain8", "--vectors", "3", "--mode", "cdm",
    ]) == 0
    assert "HALOTIS-CDM" in capsys.readouterr().out


def test_simulate_compiled_engine_matches_reference(capsys):
    assert main([
        "simulate", "--circuit", "c17", "--vectors", "5", "--engine", "compiled",
    ]) == 0
    compiled_out = capsys.readouterr().out
    assert "engine: compiled" in compiled_out
    assert main([
        "simulate", "--circuit", "c17", "--vectors", "5", "--engine", "reference",
    ]) == 0
    reference_out = capsys.readouterr().out
    assert "engine: reference" in reference_out
    # identical event counts: the engine line is the only difference
    assert [line for line in compiled_out.splitlines() if "events" in line] == [
        line for line in reference_out.splitlines() if "events" in line
    ]


def test_simulate_rejects_unknown_engine(capsys):
    with pytest.raises(SystemExit):
        main(["simulate", "--circuit", "c17", "--engine", "warp"])


def test_simulate_bench_file(tmp_path, capsys):
    bench = tmp_path / "tiny.bench"
    bench.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    assert main(["simulate", "--bench", str(bench), "--vectors", "3"]) == 0
    assert "netlist tiny" in capsys.readouterr().out


def test_simulate_writes_vcd(tmp_path, capsys):
    vcd = tmp_path / "waves.vcd"
    assert main([
        "simulate", "--circuit", "c17", "--vectors", "3", "--vcd", str(vcd),
    ]) == 0
    assert vcd.exists()
    assert "$timescale" in vcd.read_text()


def test_simulate_batch_mode(capsys):
    assert main([
        "simulate", "--circuit", "c17", "--batch", "3", "--vectors", "2",
        "--engine", "compiled",
    ]) == 0
    out = capsys.readouterr().out
    assert "HALOTIS-DDM (batch)" in out
    assert "vectors:                3" in out
    assert "amortised per vector" in out


def test_simulate_batch_writes_per_vector_json(tmp_path, capsys):
    out_dir = tmp_path / "batch"
    assert main([
        "simulate", "--circuit", "c17", "--batch", "2", "--vectors", "2",
        "--batch-out", str(out_dir),
    ]) == 0
    assert "result files written" in capsys.readouterr().out
    names = sorted(p.name for p in out_dir.iterdir())
    assert names == ["summary.json", "vector_000.json", "vector_001.json"]
    payload = json.loads((out_dir / "vector_000.json").read_text())
    assert payload["index"] == 0
    assert payload["stats"]["events_executed"] > 0
    summary = json.loads((out_dir / "summary.json").read_text())
    assert summary["vectors"] == 2
    assert summary["aggregate_stats"]["events_executed"] > 0


def test_simulate_batch_writes_per_vector_csv(tmp_path, capsys):
    out_dir = tmp_path / "batch_csv"
    assert main([
        "simulate", "--circuit", "c17", "--batch", "2", "--vectors", "2",
        "--batch-out", str(out_dir), "--batch-format", "csv",
    ]) == 0
    csv_text = (out_dir / "vector_001.csv").read_text()
    assert csv_text.startswith("time_ns,")


def test_simulate_batch_from_vector_file(tmp_path, capsys):
    vector_file = tmp_path / "vectors.json"
    vector_file.write_text(json.dumps([
        {"steps": [[0.0, {"a": 0}], [2.0, {"a": 1}]]},
        {"steps": [[0.0, {"a": 1}], [2.0, {"a": 0}]]},
    ]))
    bench = tmp_path / "tiny.bench"
    bench.write_text("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
    assert main([
        "simulate", "--bench", str(bench), "--vector-file", str(vector_file),
    ]) == 0
    assert "vectors:                2" in capsys.readouterr().out


def test_simulate_batch_jobs(capsys):
    assert main([
        "simulate", "--circuit", "c17", "--batch", "4", "--vectors", "1",
        "--jobs", "2",
    ]) == 0
    assert "jobs:                   2" in capsys.readouterr().out


def test_simulate_batch_rejects_vcd(capsys):
    code = main([
        "simulate", "--circuit", "c17", "--batch", "2", "--vcd", "w.vcd",
    ])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_simulate_batch_and_vector_file_exclusive(tmp_path, capsys):
    with pytest.raises(SystemExit):
        main([
            "simulate", "--circuit", "c17", "--batch", "2",
            "--vector-file", "x.json",
        ])


def test_experiment_fig3(capsys):
    assert main(["experiment", "fig3"]) == 0
    assert "Figure 3" in capsys.readouterr().out


def test_experiment_table1_with_json(tmp_path, capsys):
    out_path = tmp_path / "t1.json"
    assert main(["experiment", "table1", "--json", str(out_path)]) == 0
    assert "Table 1" in capsys.readouterr().out
    payload = json.loads(out_path.read_text())
    assert "table1" in payload


def test_error_reported_not_raised(tmp_path, capsys):
    missing = tmp_path / "nope.bench"
    missing.write_text("garbage !!!")
    code = main(["simulate", "--bench", str(missing), "--vectors", "1"])
    assert code == 1
    assert "error:" in capsys.readouterr().err


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
