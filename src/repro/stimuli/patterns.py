"""Pulse and random stimulus generators.

These build :class:`repro.stimuli.vectors.VectorSequence` objects for the
glitch-centric experiments: single pulses of controlled width (the
degradation sweep), glitch pairs, pulse trains and reproducible random
vector streams.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import StimulusError
from .vectors import VectorSequence


def pulse(
    name: str,
    start: float,
    width: float,
    polarity: int = 1,
    slew: Optional[float] = None,
    background: Optional[Mapping[str, int]] = None,
    tail: float = 5.0,
) -> VectorSequence:
    """A single pulse on input ``name``.

    ``polarity=1`` produces a 0->1->0 pulse of the given ``width`` (the
    time between the two ramp starts); ``polarity=0`` the complementary
    1->0->1 dip.  ``background`` assigns the other inputs at time 0.
    """
    if width <= 0.0:
        raise StimulusError("pulse width must be positive")
    if start <= 0.0:
        raise StimulusError("pulse start must be positive (t=0 is the DC step)")
    if polarity not in (0, 1):
        raise StimulusError("polarity must be 0 or 1")
    rest = 1 - polarity
    steps = [
        (0.0, dict(background or {}, **{name: rest})),
        (start, {name: polarity}),
        (start + width, {name: rest}),
    ]
    return VectorSequence(steps, slew=slew, tail=tail)


def pulse_train(
    name: str,
    start: float,
    width: float,
    spacing: float,
    count: int,
    polarity: int = 1,
    slew: Optional[float] = None,
    background: Optional[Mapping[str, int]] = None,
    tail: float = 5.0,
) -> VectorSequence:
    """``count`` identical pulses; ``spacing`` is the leading-edge period.

    The characterisation procedure uses trains with shrinking ``spacing``
    to trace out the degradation curve tp(T).
    """
    if count < 1:
        raise StimulusError("pulse count must be >= 1")
    if spacing <= width:
        raise StimulusError("spacing must exceed the pulse width")
    rest = 1 - polarity
    steps: list[Tuple[float, Dict[str, int]]] = [
        (0.0, dict(background or {}, **{name: rest}))
    ]
    for pulse_index in range(count):
        edge = start + pulse_index * spacing
        steps.append((edge, {name: polarity}))
        steps.append((edge + width, {name: rest}))
    return VectorSequence(steps, slew=slew, tail=tail)


def glitch_pair(
    name: str,
    first_start: float,
    first_width: float,
    gap: float,
    second_width: float,
    polarity: int = 1,
    slew: Optional[float] = None,
    background: Optional[Mapping[str, int]] = None,
    tail: float = 5.0,
) -> VectorSequence:
    """Two pulses separated by ``gap`` (trailing edge to leading edge).

    The canonical stimulus for observing delay degradation of the second
    pulse as ``gap`` shrinks.
    """
    if gap <= 0.0:
        raise StimulusError("gap must be positive")
    rest = 1 - polarity
    second_start = first_start + first_width + gap
    steps = [
        (0.0, dict(background or {}, **{name: rest})),
        (first_start, {name: polarity}),
        (first_start + first_width, {name: rest}),
        (second_start, {name: polarity}),
        (second_start + second_width, {name: rest}),
    ]
    return VectorSequence(steps, slew=slew, tail=tail)


def random_vectors(
    input_names: Sequence[str],
    count: int,
    period: float,
    seed: int = 0,
    slew: Optional[float] = None,
    tail: float = 5.0,
) -> VectorSequence:
    """``count`` uniformly random vectors over ``input_names``.

    Deterministic for a given ``seed`` (tests and benchmarks rely on it).
    """
    if count < 1:
        raise StimulusError("vector count must be >= 1")
    if period <= 0.0:
        raise StimulusError("period must be positive")
    generator = random.Random(seed)
    steps = []
    for position in range(count):
        assignments = {name: generator.randint(0, 1) for name in input_names}
        steps.append((position * period, assignments))
    return VectorSequence(steps, slew=slew, tail=tail)


def random_vector_batch(
    input_names: Sequence[str],
    batch: int,
    count: int,
    period: float,
    base_seed: int = 0,
    slew: Optional[float] = None,
    tail: float = 5.0,
) -> List[VectorSequence]:
    """``batch`` independent :func:`random_vectors` sequences.

    Sequence ``k`` uses seed ``base_seed + k``, so the batch is
    deterministic and each member reproducible standalone — the input
    generator for :func:`repro.core.batch.simulate_batch` and the CLI's
    ``simulate --batch`` mode.
    """
    if batch < 1:
        raise StimulusError("batch size must be >= 1")
    return [
        random_vectors(
            input_names,
            count=count,
            period=period,
            seed=base_seed + position,
            slew=slew,
            tail=tail,
        )
        for position in range(batch)
    ]
