"""Electrical rule checks (ERC) for netlists.

``check()`` walks a netlist and reports structural problems before they
turn into confusing simulation failures: undriven nets, floating gate
inputs, unread gates, combinational cycles and interface inconsistencies.

Findings use the shared :mod:`repro.analysis.findings` model, so
``repro lint`` merges ERC output with the static timing and hazard
passes under one severity and exit-code contract.
"""

from __future__ import annotations

from ..analysis.findings import Finding, FindingReport, Severity
from ..errors import NetlistError, ReproError
from .netlist import Netlist

#: Backwards-compatible alias: ``check()`` historically returned a
#: ``ValidationReport``; it is now the shared report type.
ValidationReport = FindingReport

__all__ = [
    "Severity",
    "Finding",
    "FindingReport",
    "ValidationReport",
    "check",
]


def check(netlist: Netlist, allow_cycles: bool = False) -> FindingReport:
    """Run all ERC rules on ``netlist``.

    Args:
        allow_cycles: demote combinational cycles from error to warning
            (feedback circuits such as latches are legal for the event
            kernel but need care at initialisation).
    """
    report = FindingReport()
    _check_drivers(netlist, report)
    _check_dangling(netlist, report)
    _check_interface(netlist, report)
    _check_cycles(netlist, report, allow_cycles)
    return report


def _check_drivers(netlist: Netlist, report: FindingReport) -> None:
    for net in netlist.nets.values():
        drives = net.driver is not None
        if drives and net.is_primary_input:
            report._add(
                Severity.ERROR,
                "driven-input",
                "primary input %r is driven by gate %r" % (net.name, net.driver.name),
                net=net.name,
                gate=net.driver.name,
            )
        if drives and net.is_constant:
            report._add(
                Severity.ERROR,
                "driven-constant",
                "constant net %r is driven by gate %r" % (net.name, net.driver.name),
                net=net.name,
                gate=net.driver.name,
            )
        if not drives and not net.is_primary_input and not net.is_constant:
            report._add(
                Severity.ERROR,
                "undriven-net",
                "net %r has no driver and is not an input/constant" % net.name,
                net=net.name,
            )


def _check_dangling(netlist: Netlist, report: FindingReport) -> None:
    for net in netlist.nets.values():
        unread = not net.fanouts and not net.is_primary_output
        if unread and net.driver is not None:
            report._add(
                Severity.WARNING,
                "unread-net",
                "net %r (driven by %r) has no readers and is not an output"
                % (net.name, net.driver.name),
                net=net.name,
                gate=net.driver.name,
            )
        if unread and net.is_primary_input:
            report._add(
                Severity.WARNING,
                "unused-input",
                "primary input %r is never read" % net.name,
                net=net.name,
            )


def _check_interface(netlist: Netlist, report: FindingReport) -> None:
    if not netlist.primary_inputs:
        report._add(Severity.WARNING, "no-inputs", "netlist has no primary inputs")
    if not netlist.primary_outputs:
        report._add(Severity.WARNING, "no-outputs", "netlist has no primary outputs")
    for net in netlist.primary_outputs:
        if net.driver is None and not net.is_primary_input and not net.is_constant:
            report._add(
                Severity.ERROR,
                "undriven-output",
                "primary output %r is undriven" % net.name,
                net=net.name,
            )


def _check_cycles(
    netlist: Netlist, report: FindingReport, allow_cycles: bool
) -> None:
    raw_cyclic = False
    try:
        netlist.topological_gates()
    except NetlistError as exc:
        raw_cyclic = True
        severity = Severity.WARNING if allow_cycles else Severity.ERROR
        report._add(severity, "combinational-cycle", str(exc))
    _check_lowering(netlist, report, raw_cyclic)


def _check_lowering(
    netlist: Netlist, report: FindingReport, raw_cyclic: bool
) -> None:
    """Assert the compiled lowering agrees with the raw-netlist verdict.

    ``compile()`` must succeed exactly when the raw graph lowers (cycles
    are *legal* to compile — latches simulate event-by-event — but the
    lowering's own topological order must then fail just like the raw
    one).  Any divergence means the two graph representations drifted,
    which would silently invalidate every compiled-engine result, so it
    is always an ERROR regardless of ``allow_cycles``.
    """
    try:
        compiled = netlist.compile()
    except ReproError as exc:
        report._add(
            Severity.ERROR,
            "lowering-failed",
            "netlist.compile() failed: %s" % exc,
        )
        return
    try:
        compiled.topological_order()
        lowered_cyclic = False
    except ReproError:
        lowered_cyclic = True
    if lowered_cyclic != raw_cyclic:
        report._add(
            Severity.ERROR,
            "lowering-cycle-divergence",
            "raw netlist is %s but its compiled lowering is %s — the "
            "graph representations disagree"
            % (
                "cyclic" if raw_cyclic else "acyclic",
                "cyclic" if lowered_cyclic else "acyclic",
            ),
        )
