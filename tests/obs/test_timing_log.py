"""Phase timers, the ``@timed`` decorator, and structured logging."""

from __future__ import annotations

import io
import json
import logging
import time

import pytest

from repro.obs.log import configure_logging, get_logger
from repro.obs.registry import MetricsRegistry
from repro.obs.timing import PhaseTimer, timed


# ----------------------------------------------------------------------
# PhaseTimer
# ----------------------------------------------------------------------

def test_phase_timer_accumulates_same_name_phases():
    timer = PhaseTimer()
    with timer.phase("work"):
        time.sleep(0.001)
    with timer.phase("work"):
        time.sleep(0.001)
    with timer.phase("other"):
        pass
    phases = timer.phases()
    assert set(phases) == {"work", "other"}
    assert phases["work"] >= 0.002
    assert timer.elapsed() >= phases["work"]


def test_phase_timer_disabled_records_nothing():
    timer = PhaseTimer(enabled=False)
    with timer.phase("work"):
        pass
    timer.record("manual", 1.0)
    assert timer.phases() == {}
    assert timer.elapsed() == 0.0


def test_phase_timer_publish_labels_each_phase():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "phase_seconds", "", ("engine", "phase"), buckets=(10.0,)
    )
    timer = PhaseTimer()
    timer.record("initialize", 0.25)
    timer.record("settle", 0.5)
    timer.record("settle", 0.5)
    timer.publish(histogram, engine="compiled")
    series = histogram.series()
    assert set(series) == {("compiled", "initialize"), ("compiled", "settle")}
    # same-name phases fold into ONE observation of the summed time
    settle = series[("compiled", "settle")]
    assert settle.count == 1
    assert settle.sum == pytest.approx(1.0)


def test_phase_timer_records_on_exception():
    timer = PhaseTimer()
    with pytest.raises(RuntimeError), timer.phase("doomed"):
        raise RuntimeError("boom")
    assert "doomed" in timer.phases()


# ----------------------------------------------------------------------
# @timed
# ----------------------------------------------------------------------

def test_timed_decorator_observes_into_registry():
    registry = MetricsRegistry()

    @timed("op_seconds", "op wall time", registry=registry, op="sweep")
    def operation(x):
        return x * 2

    assert operation(21) == 42
    assert operation(1) == 2
    histogram = registry.get("op_seconds")
    assert histogram.type == "histogram"
    assert histogram.cumulative_counts(op="sweep")[-1] == 2


def test_timed_decorator_observes_failures_too():
    registry = MetricsRegistry()

    @timed("op_seconds", registry=registry, op="doomed")
    def operation():
        raise ValueError("boom")

    with pytest.raises(ValueError):
        operation()
    assert registry.get("op_seconds").cumulative_counts(op="doomed")[-1] == 1


def test_timed_decorator_disabled_registry_passthrough():
    registry = MetricsRegistry(enabled=False)

    @timed("op_seconds", registry=registry)
    def operation():
        return "ok"

    assert operation() == "ok"
    assert registry.get("op_seconds") is None  # never even created


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------

def test_configure_logging_is_idempotent():
    logger = configure_logging(level="info")
    assert len(logger.handlers) == 1
    again = configure_logging(level="debug")
    assert again is logger
    assert len(logger.handlers) == 1
    assert logger.level == logging.DEBUG
    configure_logging()  # restore the default for other tests
    assert logger.level == logging.WARNING


def test_configure_logging_rejects_unknown_level():
    with pytest.raises(ValueError, match="unknown log level"):
        configure_logging(level="chatty")


def test_json_mode_emits_one_object_per_line_with_extras():
    stream = io.StringIO()
    configure_logging(level="info", json_mode=True, stream=stream)
    try:
        get_logger("service").warning(
            "worker died; respawning",
            extra={"worker_id": 3, "exitcode": -9},
        )
        get_logger("server").info("connection opened")
    finally:
        configure_logging()
    lines = stream.getvalue().strip().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["level"] == "warning"
    assert first["logger"] == "repro.service"
    assert first["msg"] == "worker died; respawning"
    assert first["worker_id"] == 3
    assert first["exitcode"] == -9
    assert isinstance(first["ts"], float)
    second = json.loads(lines[1])
    assert second["logger"] == "repro.server"


def test_json_mode_survives_unserialisable_extras():
    stream = io.StringIO()
    configure_logging(level="info", json_mode=True, stream=stream)
    try:
        get_logger("service").info("odd", extra={"payload": {1, 2}})
    finally:
        configure_logging()
    payload = json.loads(stream.getvalue())
    assert "1" in payload["payload"]  # repr() fallback


def test_text_mode_appends_extras_as_key_value():
    stream = io.StringIO()
    configure_logging(level="info", json_mode=False, stream=stream)
    try:
        get_logger("service").warning(
            "requeueing in-flight chunk after worker crash",
            extra={"vectors": 8},
        )
    finally:
        configure_logging()
    line = stream.getvalue().strip()
    assert "repro.service" in line
    assert "requeueing in-flight chunk" in line
    assert "vectors=8" in line


def test_level_threshold_filters():
    stream = io.StringIO()
    configure_logging(level="error", stream=stream)
    try:
        get_logger("service").warning("below threshold")
        get_logger("service").error("above threshold")
    finally:
        configure_logging()
    output = stream.getvalue()
    assert "below threshold" not in output
    assert "above threshold" in output


def test_get_logger_prefixing():
    assert get_logger().name == "repro"
    assert get_logger("service").name == "repro.service"
    assert get_logger("repro.server").name == "repro.server"
    assert get_logger("repro").name == "repro"
