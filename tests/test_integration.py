"""Cross-module integration: the three engines against each other.

These tests encode the repo's central consistency claims:

* every engine settles to the same boolean answers,
* HALOTIS delays agree with the analog substrate within model accuracy,
* the public package surface stays importable and coherent.
"""

import itertools

import pytest

import repro
from repro.analog.simulator import AnalogSimulator
from repro.baselines.inertial_simulator import classical_simulate
from repro.circuit import modules
from repro.circuit.evaluate import evaluate_netlist
from repro.config import cdm_config, ddm_config
from repro.core.engine import simulate
from repro.stimuli.vectors import VectorSequence, multiplication_sequence


def test_public_api_surface():
    assert repro.__version__ == "1.0.0"
    netlist = repro.array_multiplier(2)
    stimulus = repro.multiplication_sequence([(0, 0), (3, 3)], width=2)
    result = repro.simulate(netlist, stimulus, config=repro.ddm_config())
    assert result.final_values["s0"] == 1  # 9 = 0b1001
    assert result.final_values["s3"] == 1
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_three_engines_agree_on_settled_c17(c17):
    """Zero-delay logic, HALOTIS (both modes), classical and analog all
    settle to identical outputs for every c17 input vector."""
    names = ("1", "2", "3", "6", "7")
    for bits in itertools.islice(itertools.product((0, 1), repeat=5), 0, 32, 5):
        values = dict(zip(names, bits))
        stimulus = VectorSequence([(0.0, values)], tail=3.0)
        expected = evaluate_netlist(c17, values)

        halotis = simulate(c17, stimulus, config=ddm_config())
        classical = classical_simulate(c17, stimulus)
        analog = AnalogSimulator(c17, dt=0.005).run(stimulus)

        for out in ("22", "23"):
            assert halotis.final_values[out] == expected[out]
            assert classical.final_values[out] == expected[out]
            level = analog.waveform(out).value_at(analog.times[-1])
            assert round(level / 5.0) == expected[out]


def test_halotis_delay_tracks_analog_on_chain():
    """50%-50% stage delays of HALOTIS and the analog engine agree within
    30% on an inverter chain (the library is a fit of the substrate)."""
    netlist = modules.inverter_chain(5)
    stimulus = VectorSequence(
        [(0.0, {"in": 0}), (2.0, {"in": 1})], slew=0.2, tail=4.0
    )
    halotis = simulate(netlist, stimulus, config=ddm_config())
    analog = AnalogSimulator(netlist, dt=0.002).run(stimulus)

    for stage in range(2, 6):
        logic_edge = halotis.traces["out%d" % stage].edges()[0][0]
        direction = stage % 2 == 0
        analog_edge = analog.waveform("out%d" % stage).crossing_times(
            2.5, rising=direction
        )[0]
        assert logic_edge == pytest.approx(analog_edge, rel=0.3, abs=0.1)


def test_multiplier_settles_correctly_under_random_vectors(mult4):
    import random

    generator = random.Random(42)
    pairs = [(generator.randrange(16), generator.randrange(16))
             for _ in range(6)]
    stimulus = multiplication_sequence(pairs, period=5.0)
    ddm = simulate(mult4, stimulus, config=ddm_config())
    cdm = simulate(mult4, stimulus, config=cdm_config())
    for index, (a, b) in enumerate(pairs):
        at_time = (index + 1) * 5.0 - 0.1
        assert ddm.traces.word_at(at_time, "s", 8) == a * b
        assert cdm.traces.word_at(at_time, "s", 8) == a * b


def test_ddm_never_slower_settling_than_cdm(mult4):
    """Degradation only shortens delays: DDM's last output edge cannot be
    later than CDM's."""
    stimulus = multiplication_sequence([(0, 0), (15, 15), (0, 0)])
    ddm = simulate(mult4, stimulus, config=ddm_config())
    cdm = simulate(mult4, stimulus, config=cdm_config())

    def last_edge(result):
        return max(
            (trace.edges()[-1][0] for trace in result.traces if trace.edges()),
            default=0.0,
        )

    assert last_edge(ddm) <= last_edge(cdm) + 1e-9


def test_expanded_bench_circuit_cross_engines(tmp_path):
    """A .bench circuit: parse -> expand -> all engines agree settled."""
    from repro.circuit import bench_io
    from repro.circuit.expand import expand_netlist

    text = (
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n"
        "m = XOR(a, b)\n"
        "y = OR(m, c)\n"
    )
    macro = bench_io.read_bench(text, name="mini")
    primitive = expand_netlist(macro)
    for bits in itertools.product((0, 1), repeat=3):
        values = dict(zip("abc", bits))
        stimulus = VectorSequence([(0.0, values)], tail=3.0)
        expected = evaluate_netlist(macro, values)["y"]
        halotis = simulate(primitive, stimulus, config=ddm_config())
        analog = AnalogSimulator(primitive, dt=0.005).run(stimulus)
        assert halotis.final_values["y"] == expected
        level = analog.waveform("y").value_at(analog.times[-1])
        assert round(level / 5.0) == expected


def test_vcd_of_experiment_is_loadable_text(tmp_path):
    from repro.io_formats.vcd import write_vcd

    netlist = modules.inverter_chain(3)
    stimulus = VectorSequence(
        [(0.0, {"in": 0}), (1.0, {"in": 1}), (3.0, {"in": 0})], tail=3.0
    )
    result = simulate(netlist, stimulus, config=ddm_config())
    path = tmp_path / "chain.vcd"
    write_vcd(result.traces, str(path))
    content = path.read_text()
    assert content.startswith("$comment")
    assert content.count("$var") == len(result.traces)
