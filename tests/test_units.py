"""Unit helpers."""

from repro import units


def test_time_constants_are_consistent():
    assert units.PS == 1e-3 * units.NS
    assert units.FS == 1e-6 * units.NS
    assert units.US == 1e3 * units.NS


def test_conversions_roundtrip():
    assert units.ps_to_ns(units.ns_to_ps(3.25)) == 3.25
    assert units.ns_to_ps(0.5) == 500.0


def test_format_time_picks_sensible_scales():
    assert units.format_time(1.5) == "1.500 ns"
    assert units.format_time(0.012) == "12.0 ps"
    assert units.format_time(2500.0) == "2.500 us"
    assert units.format_time(0.0) == "0.000 ns"


def test_format_voltage():
    assert units.format_voltage(2.5) == "2.500 V"
    assert units.format_voltage(0.035) == "35.0 mV"


def test_times_close_uses_resolution():
    assert units.times_close(1.0, 1.0 + 0.5 * units.TIME_RESOLUTION)
    assert not units.times_close(1.0, 1.0 + 10 * units.TIME_RESOLUTION)
    assert units.times_close(1.0, 1.1, resolution=0.2)


def test_min_delay_positive_and_tiny():
    assert 0.0 < units.MIN_DELAY < 1e-3
