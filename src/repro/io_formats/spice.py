"""SPICE netlist export.

Writes a primitive netlist (INV/NAND/NOR cells) as a SPICE deck with
level-1 MOSFET subcircuits, PWL stimulus sources derived from a
:class:`repro.stimuli.vectors.VectorSequence`, and ``.tran`` /
``.measure`` cards — so users with access to a real SPICE engine can
re-run the repo's comparisons against it.

The level-1 parameters are a translation of the alpha-power technology
(threshold voltages and a KP chosen to match the saturation current at
full drive); exact waveform equality with :mod:`repro.analog` is not the
goal — interoperability is.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Union

from ..analog.gate_dynamics import ANALOG_CELLS, analog_cell
from ..analog.technology import Technology, default_technology
from ..circuit.expand import is_primitive
from ..circuit.netlist import Netlist
from ..errors import AnalysisError

#: Reference channel length (um) used for the exported devices.
_LENGTH_UM = 0.6
#: Reference unit width (um).
_UNIT_WIDTH_UM = 2.4


def _kp(tech: Technology, k: float, vth: float, alpha: float) -> float:
    """Level-1 KP (uA/V^2) matching the alpha-power Idsat at full drive."""
    overdrive = tech.vdd - vth
    idsat = k * overdrive ** alpha
    return 2.0 * idsat / (overdrive ** 2)


def _subckt_lines(cell_name: str, tech: Technology) -> List[str]:
    """Subcircuit body for one primitive cell."""
    cell = analog_cell(cell_name)
    pins = " ".join("in%d" % pin for pin in range(cell.num_inputs))
    lines = [".subckt %s %s out vdd gnd" % (cell_name.lower(), pins)]
    wn = cell.wn * _UNIT_WIDTH_UM
    wp = cell.wp * _UNIT_WIDTH_UM
    if cell.kind == "inv":
        lines.append("mp0 out in0 vdd vdd pmos_06 w=%.2fu l=%.2fu"
                     % (wp, _LENGTH_UM))
        lines.append("mn0 out in0 gnd gnd nmos_06 w=%.2fu l=%.2fu"
                     % (wn, _LENGTH_UM))
    elif cell.kind == "nand":
        for pin in range(cell.num_inputs):
            lines.append(
                "mp%d out in%d vdd vdd pmos_06 w=%.2fu l=%.2fu"
                % (pin, pin, wp, _LENGTH_UM)
            )
        node_above = "out"
        for pin in range(cell.num_inputs):
            node_below = (
                "gnd" if pin == cell.num_inputs - 1 else "ns%d" % pin
            )
            lines.append(
                "mn%d %s in%d %s gnd nmos_06 w=%.2fu l=%.2fu"
                % (pin, node_above, pin, node_below, wn, _LENGTH_UM)
            )
            node_above = node_below
    elif cell.kind == "nor":
        node_above = "vdd"
        for pin in range(cell.num_inputs):
            node_below = (
                "out" if pin == cell.num_inputs - 1 else "ps%d" % pin
            )
            lines.append(
                "mp%d %s in%d %s vdd pmos_06 w=%.2fu l=%.2fu"
                % (pin, node_below, pin, node_above, wp, _LENGTH_UM)
            )
            node_above = node_below
        for pin in range(cell.num_inputs):
            lines.append(
                "mn%d out in%d gnd gnd nmos_06 w=%.2fu l=%.2fu"
                % (pin, pin, wn, _LENGTH_UM)
            )
    lines.append(".ends %s" % cell_name.lower())
    return lines


def _pwl(points: List[tuple]) -> str:
    return "pwl(" + " ".join("%gns %gv" % (t, v) for t, v in points) + ")"


def write_spice(
    netlist: Netlist,
    output: Union[str, io.TextIOBase],
    stimulus=None,
    technology: Optional[Technology] = None,
    input_slew: float = 0.20,
    tran_step_ps: float = 2.0,
) -> None:
    """Write ``netlist`` (primitive cells only) as a SPICE deck.

    Args:
        stimulus: optional :class:`VectorSequence`; drives primary inputs
            with PWL sources and sizes the ``.tran`` card.  Without it,
            inputs are tied low and a 10 ns transient is emitted.
    """
    if not is_primitive(netlist):
        raise AnalysisError(
            "SPICE export needs a primitive netlist; run "
            "repro.circuit.expand.expand_netlist first"
        )
    tech = technology if technology is not None else default_technology()

    used_cells = sorted({gate.cell.name for gate in netlist.gates.values()})
    for cell_name in used_cells:
        if cell_name not in ANALOG_CELLS:
            raise AnalysisError("no analog model for cell %s" % cell_name)

    lines: List[str] = [
        "* %s — exported by repro.io_formats.spice" % netlist.name,
        "* technology: %s (VDD=%.1f V)" % (tech.name, tech.vdd),
        ".model nmos_06 nmos (level=1 vto=%.2f kp=%.1fu lambda=0.02)"
        % (tech.vth_n, _kp(tech, tech.k_n, tech.vth_n, tech.alpha_n)),
        ".model pmos_06 pmos (level=1 vto=-%.2f kp=%.1fu lambda=0.02)"
        % (tech.vth_p, _kp(tech, tech.k_p, tech.vth_p, tech.alpha_p)),
        "",
    ]
    for cell_name in used_cells:
        lines.extend(_subckt_lines(cell_name, tech))
        lines.append("")

    lines.append("vdd vdd 0 dc %.1f" % tech.vdd)

    # Stimulus sources.
    horizon = 10.0
    levels: Dict[str, float] = {}
    waveforms: Dict[str, List[tuple]] = {}
    if stimulus is not None:
        horizon = stimulus.horizon + 2.0
        initial = stimulus.initial_values(netlist)
        for net in netlist.primary_inputs:
            level = initial[net.name] * tech.vdd
            levels[net.name] = level
            waveforms[net.name] = [(0.0, level)]
        for at_time, assignments, slew in stimulus.iter_changes():
            ramp = slew if slew is not None else input_slew
            for name, value in assignments.items():
                target = value * tech.vdd
                if abs(target - levels[name]) < 1e-12:
                    continue
                waveforms[name].append((at_time, levels[name]))
                waveforms[name].append((at_time + ramp, target))
                levels[name] = target
    else:
        for net in netlist.primary_inputs:
            waveforms[net.name] = [(0.0, 0.0)]

    for position, net in enumerate(netlist.primary_inputs):
        lines.append(
            "vin%d n_%s 0 %s" % (position, net.name, _pwl(waveforms[net.name]))
        )
    for net in netlist.nets.values():
        if net.is_constant:
            lines.append(
                "vtie_%s n_%s 0 dc %.1f"
                % (net.name, net.name, net.constant_value * tech.vdd)
            )

    # Gate instances; node names are prefixed to stay SPICE-safe.
    for index, gate in enumerate(netlist.gates.values()):
        nodes = " ".join("n_%s" % gi.net.name for gi in gate.inputs)
        lines.append(
            "x%d %s n_%s vdd 0 %s"
            % (index, nodes, gate.output.name, gate.cell.name.lower())
        )

    # Explicit wire caps (pin caps are implicit in the devices).
    for net in netlist.nets.values():
        if net.wire_cap > 0.0:
            lines.append(
                "cw_%s n_%s 0 %.2ff" % (net.name, net.name, net.wire_cap)
            )

    lines.append("")
    lines.append(".tran %.1fps %.2fns" % (tran_step_ps, horizon))
    probes = " ".join(
        "v(n_%s)" % net.name for net in netlist.primary_outputs
    )
    if probes:
        lines.append(".print tran %s" % probes)
    lines.append(".end")

    own_handle = isinstance(output, str)
    handle = open(output, "w") if own_handle else output
    try:
        handle.write("\n".join(lines) + "\n")
    finally:
        if own_handle:
            handle.close()
