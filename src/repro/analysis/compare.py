"""Waveform-agreement metrics between simulators.

The paper's Figures 6/7 argument is qualitative ("very similar
waveforms"); to make it checkable we quantify agreement between two edge
lists (from HALOTIS traces, classical-baseline edges or digitised analog
waveforms):

* greedy same-polarity edge matching within a time tolerance,
* settled bus words at sampling instants,
* toggle-count ratios.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import AnalysisError

Edge = Tuple[float, int]


@dataclasses.dataclass(frozen=True)
class EdgeMatch:
    """Outcome of matching two edge lists.

    Attributes:
        matched: number of edge pairs matched (same polarity, within
            tolerance).
        unmatched_a / unmatched_b: leftovers on each side.
        mean_abs_skew: mean |t_a - t_b| over matches, ns.
        max_abs_skew: worst matched skew, ns.
    """

    matched: int
    unmatched_a: int
    unmatched_b: int
    mean_abs_skew: float
    max_abs_skew: float

    @property
    def agreement(self) -> float:
        """Matched fraction of the union (1.0 = identical activity)."""
        total = self.matched + self.unmatched_a + self.unmatched_b
        if total == 0:
            return 1.0
        return self.matched / total


def match_edges(
    edges_a: Sequence[Edge],
    edges_b: Sequence[Edge],
    tolerance: float,
) -> EdgeMatch:
    """Greedily match same-polarity edges within ``tolerance`` ns.

    Both lists must be time-sorted.  Greedy in time order is optimal for
    non-crossing matchings of sorted sequences, which is the case here.
    """
    if tolerance < 0.0:
        raise AnalysisError("tolerance must be >= 0")
    index_b = 0
    used = [False] * len(edges_b)
    skews: List[float] = []
    for time_a, value_a in edges_a:
        best = None
        for position in range(index_b, len(edges_b)):
            time_b, value_b = edges_b[position]
            if used[position] or value_b != value_a:
                continue
            if time_b < time_a - tolerance:
                continue
            if time_b > time_a + tolerance:
                break
            best = position
            break
        if best is not None:
            used[best] = True
            skews.append(abs(time_a - edges_b[best][0]))
            while index_b < len(edges_b) and used[index_b]:
                index_b += 1
    matched = len(skews)
    return EdgeMatch(
        matched=matched,
        unmatched_a=len(edges_a) - matched,
        unmatched_b=len(edges_b) - matched,
        mean_abs_skew=sum(skews) / matched if matched else 0.0,
        max_abs_skew=max(skews) if skews else 0.0,
    )


def settled_words(
    word_at: Callable[[float, str, int], int],
    sample_times: Sequence[float],
    prefix: str,
    width: int,
) -> List[int]:
    """Sample a bus through any ``word_at(time, prefix, width)`` callable.

    Works uniformly for :class:`repro.core.trace.TraceSet` and
    :class:`repro.analog.simulator.AnalogResult` (both expose that
    method), so experiments can compare settled words across engines.
    """
    return [word_at(t, prefix, width) for t in sample_times]


def edge_lists_equal(
    edges_a: Sequence[Edge],
    edges_b: Sequence[Edge],
    tolerance: float,
) -> bool:
    """True when both lists pair up exactly within ``tolerance``."""
    if len(edges_a) != len(edges_b):
        return False
    outcome = match_edges(edges_a, edges_b, tolerance)
    return outcome.unmatched_a == 0 and outcome.unmatched_b == 0


def compare_trace_sets(
    names: Sequence[str],
    edges_of_a: Callable[[str], Sequence[Edge]],
    edges_of_b: Callable[[str], Sequence[Edge]],
    tolerance: float,
) -> Dict[str, EdgeMatch]:
    """Match edges net-by-net through two ``name -> edge list`` callables."""
    return {
        name: match_edges(edges_of_a(name), edges_of_b(name), tolerance)
        for name in names
    }
