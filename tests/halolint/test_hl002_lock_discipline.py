"""Teeth tests for HL002 — lock discipline on guarded attributes."""

from __future__ import annotations

from conftest import findings_for

MOD = "src/repro/server/table.py"

GUARDED_CLASS = """
    import threading


    class Table:
        def __init__(self):
            self._entries = {}  # halolint: guarded-by(_lock)
            self._lock = threading.Lock()
"""


def test_unguarded_access_fires(lint_tree):
    result = lint_tree({MOD: GUARDED_CLASS + """
        def size(self):
            return len(self._entries)
    """})
    (finding,) = findings_for(result, "HL002")
    assert finding.file == MOD
    assert "_entries" in finding.message
    assert "_lock" in finding.message


def test_with_block_access_is_fine(lint_tree):
    result = lint_tree({MOD: GUARDED_CLASS + """
        def size(self):
            with self._lock:
                return len(self._entries)
    """})
    assert findings_for(result, "HL002") == []


def test_locked_annotation_grants_the_lock(lint_tree):
    result = lint_tree({MOD: GUARDED_CLASS + """
        # halolint: locked(_lock)
        def size_locked(self):
            return len(self._entries)
    """})
    assert findings_for(result, "HL002") == []


def test_init_is_exempt(lint_tree):
    # The declaration itself — and any other __init__ access — is
    # construction-time, before the object is shared.
    result = lint_tree({MOD: GUARDED_CLASS})
    assert findings_for(result, "HL002") == []


def test_nested_def_does_not_inherit_the_lock(lint_tree):
    # The closure runs later, on whatever thread calls it.
    result = lint_tree({MOD: GUARDED_CLASS + """
        def deferred(self):
            with self._lock:
                def peek():
                    return self._entries
                return peek
    """})
    (finding,) = findings_for(result, "HL002")
    assert "_entries" in finding.message


def test_wrong_lock_does_not_count(lint_tree):
    result = lint_tree({MOD: GUARDED_CLASS + """
        def size(self):
            with self._other:
                return len(self._entries)
    """})
    assert len(findings_for(result, "HL002")) == 1


def test_dangling_guarded_by_annotation_fires(lint_tree):
    result = lint_tree({MOD: """
        class Table:
            def __init__(self):
                size = 0  # halolint: guarded-by(_lock)
    """})
    (finding,) = findings_for(result, "HL002")
    assert "not attached" in finding.message


def test_disabling_the_rule_loses_the_teeth(lint_tree):
    bad = {MOD: GUARDED_CLASS + """
        def size(self):
            return len(self._entries)
    """}
    assert findings_for(lint_tree(bad), "HL002")
    assert not findings_for(lint_tree(bad, disabled=["HL002"]), "HL002")
