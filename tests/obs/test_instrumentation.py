"""End-to-end instrumentation: engine, batch, service, server, CLI.

The layers under test all publish to the *process-default* registry, so
every assertion here works on deltas: drain the registry with
``snapshot(reset=True)``, do the work, read the delta.  Presence and
exact counts are pinned where the layer controls them (runs, vectors,
task outcomes); wall-clock figures are only required to be positive.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.config import ddm_config
from repro.core.batch import simulate_batch
from repro.core.engine import simulate
from repro.core.service import SimulationService
from repro.obs.prometheus import parse_text
from repro.obs.registry import MetricsRegistry, get_registry
from repro.stimuli.patterns import random_vector_batch, random_vectors


def _drain():
    get_registry().snapshot(reset=True)


def _delta():
    """Drain the default registry into an inspectable throwaway."""
    inspect = MetricsRegistry()
    inspect.merge_snapshot(get_registry().snapshot(reset=True))
    return inspect


def _stimulus(netlist, count=3, seed=11):
    return random_vectors(
        [net.name for net in netlist.primary_inputs],
        count=count, period=5.0, seed=seed,
    )


def _stimuli(netlist, batch=6, seed=11):
    return random_vector_batch(
        [net.name for net in netlist.primary_inputs],
        batch=batch, count=2, period=2.0, base_seed=seed, tail=2.0,
    )


# ----------------------------------------------------------------------
# engine layer
# ----------------------------------------------------------------------

def test_simulate_publishes_engine_metrics(c17):
    config = ddm_config()
    _drain()
    result = simulate(
        c17, _stimulus(c17), config=config, engine_kind="compiled"
    )
    delta = _delta()
    assert delta.get("halotis_engine_runs_total").value(engine="compiled") == 1
    executed = delta.get("halotis_engine_events_executed_total")
    assert executed.value(engine="compiled") == result.stats.events_executed
    run_seconds = delta.get("halotis_engine_run_seconds")
    assert run_seconds.cumulative_counts(engine="compiled")[-1] == 1
    phases = delta.get("halotis_engine_phase_seconds")
    observed_phases = {key[1] for key in phases.series()}
    assert {"initialize", "stimulus", "settle", "drain"} <= observed_phases


def test_simulate_result_carries_metrics(c17):
    result = simulate(
        c17, _stimulus(c17), config=ddm_config(), engine_kind="compiled"
    )
    metrics = result.metrics
    assert metrics["engine"] == "compiled"
    assert metrics["wall_seconds"] > 0
    assert metrics["counters"]["events_executed"] == (
        result.stats.events_executed
    )
    assert set(metrics["phases"]) == {
        "initialize", "stimulus", "settle", "drain",
    }


def test_collect_metrics_off_is_silent(c17):
    config = ddm_config(collect_metrics=False)
    _drain()
    result = simulate(
        c17, _stimulus(c17), config=config, engine_kind="compiled"
    )
    assert result.metrics is None
    delta = get_registry().snapshot(reset=True)
    recorded = [
        name for name, entry in delta["metrics"].items() if entry["series"]
    ]
    assert recorded == []


def test_vector_engine_publishes_lockstep_wave_metrics(mult4):
    pytest.importorskip("numpy")
    _drain()
    batch = simulate_batch(
        mult4, _stimuli(mult4), config=ddm_config(), engine_kind="vector"
    )
    delta = _delta()
    runs = delta.get("halotis_engine_runs_total")
    assert runs.value(engine="vector") == len(batch)
    waves = delta.get("halotis_lockstep_waves_total")
    lanes = delta.get("halotis_lockstep_lanes_total")
    assert waves.value(engine="vector") > 0
    assert lanes.value(engine="vector") >= waves.value(engine="vector")


# ----------------------------------------------------------------------
# batch layer
# ----------------------------------------------------------------------

def test_batch_metrics_inprocess(mult4):
    _drain()
    stimuli = _stimuli(mult4)
    batch = simulate_batch(
        mult4, stimuli, config=ddm_config(), engine_kind="compiled"
    )
    assert batch.metrics["mode"] == "inprocess"
    assert batch.metrics["vectors"] == len(stimuli)
    assert batch.metrics["wall_seconds"] > 0
    delta = _delta()
    vectors = delta.get("halotis_batch_vectors_total")
    assert vectors.value(engine="compiled", mode="inprocess") == len(stimuli)
    runs = delta.get("halotis_batch_runs_total")
    assert runs.value(engine="compiled", mode="inprocess") == 1


# ----------------------------------------------------------------------
# service layer: worker deltas merge into the parent registry
# ----------------------------------------------------------------------

def test_service_merges_worker_engine_metrics(mult4):
    stimuli = _stimuli(mult4, batch=8)
    config = ddm_config(record_traces=False)
    with SimulationService(
        mult4, config=config, workers=2, engine_kind="compiled"
    ) as service:
        service.run_batch(stimuli)  # warm-up outside the measured delta
        _drain()
        batch = service.run_batch(stimuli)
    assert batch.metrics["mode"] == "service"
    delta = _delta()
    # The engine runs happened in *worker processes*; their deltas were
    # shipped on the result transport and merged here, exactly once.
    runs = delta.get("halotis_engine_runs_total")
    assert runs.value(engine="compiled") == len(stimuli)
    tasks = delta.get("halotis_service_tasks_total")
    assert tasks.value(outcome="ok") >= 1
    queue_wait = delta.get("halotis_service_queue_wait_seconds")
    assert queue_wait.cumulative_counts()[-1] >= 1
    task_seconds = delta.get("halotis_service_task_seconds")
    assert task_seconds.cumulative_counts(outcome="ok")[-1] >= 1
    chunks = delta.get("halotis_service_chunk_vectors")
    assert chunks.cumulative_counts()[-1] >= 1


class _CrashOnceStimulus:
    """Hard-crashes the first worker that touches it, then runs
    normally (the flag file records the crash already happened).
    Module-level: stimuli cross the process boundary by pickle."""

    def __init__(self, inner, flag_path):
        self._inner = inner
        self._flag_path = flag_path
        self.horizon = inner.horizon

    def initial_values(self, netlist):
        if not os.path.exists(self._flag_path):
            with open(self._flag_path, "w") as handle:
                handle.write("crashed")
            os._exit(17)
        return self._inner.initial_values(netlist)

    def iter_changes(self):
        return self._inner.iter_changes()


def test_service_counts_crash_respawn_and_requeue(mult4, tmp_path):
    stimuli = list(_stimuli(mult4, batch=4))
    config = ddm_config(record_traces=False)
    with SimulationService(
        mult4, config=config, workers=1, engine_kind="compiled"
    ) as service:
        service.run_batch(stimuli[:2])  # warm-up
        _drain()
        poisoned = [
            _CrashOnceStimulus(stimuli[0], str(tmp_path / "crashed"))
        ] + stimuli[1:]
        batch = service.run_batch(poisoned)
    assert len(batch) == len(stimuli)
    delta = _delta()
    restarts = delta.get("halotis_service_worker_restarts_total")
    assert restarts.value() >= 1
    requeued = delta.get("halotis_service_tasks_requeued_total")
    assert requeued.value() >= 1
    tasks = delta.get("halotis_service_tasks_total")
    assert tasks.value(outcome="requeued") >= 1


def test_service_metrics_off_ships_no_snapshots(mult4):
    config = ddm_config(record_traces=False, collect_metrics=False)
    with SimulationService(
        mult4, config=config, workers=1, engine_kind="compiled"
    ) as service:
        _drain()
        batch = service.run_batch(_stimuli(mult4, batch=4))
    assert batch.metrics is None
    for result in batch:
        assert result.metrics is None
    delta = get_registry().snapshot(reset=True)
    recorded = [
        name for name, entry in delta["metrics"].items() if entry["series"]
    ]
    assert recorded == []


# ----------------------------------------------------------------------
# server layer + CLI stats front end
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def server():
    from repro.server.app import SimulationServer

    server = SimulationServer(port=0, pool_workers=2).start_background(15.0)
    yield server
    assert server.stop_and_join(30.0), "server did not shut down"


@pytest.fixture(scope="module")
def client(server):
    from repro.server.client import SimulationClient

    with SimulationClient(server.host, server.port) as client:
        client.register("c17", {"kind": "builtin", "name": "c17"})
        yield client


def _scrape(client):
    text = client.metrics()
    return text, parse_text(text)


def test_server_scrape_covers_every_layer(client, c17):
    client.simulate("c17", _stimulus(c17))
    text, families = _scrape(client)
    # request layer
    requests = families["halotis_server_requests_total"]
    assert requests["type"] == "counter"
    ops = {labels["op"] for _, labels, _ in requests["samples"]}
    assert {"register", "simulate", "metrics"} & ops
    latency = families["halotis_server_request_seconds"]
    assert latency["type"] == "histogram"
    # per-netlist throughput
    vectors = families["halotis_server_vectors_total"]
    served = {
        labels["netlist"]: value
        for _, labels, value in vectors["samples"]
    }
    assert served["c17"] >= 1
    # service + engine metrics from the netlist's warm pool surface in
    # the same scrape (the registry is process-wide)
    assert "halotis_service_task_seconds" in families
    assert "halotis_engine_runs_total" in families
    # gauges
    assert "halotis_server_open_connections" in families
    assert "halotis_server_inflight_requests" in families


def test_server_counts_error_requests(client):
    from repro.errors import ServerError

    with pytest.raises(ServerError):
        client.call("simulate", netlist="no-such-netlist", vector={})
    _, families = _scrape(client)
    statuses = {
        (labels["op"], labels["status"]): value
        for _, labels, value in (
            families["halotis_server_requests_total"]["samples"]
        )
    }
    assert statuses.get(("simulate", "error"), 0) >= 1
    errors = families["halotis_server_errors_total"]
    assert sum(value for _, _, value in errors["samples"]) >= 1


def test_server_clamps_unknown_op_label(client):
    from repro.errors import ServerError

    with pytest.raises(ServerError):
        client.call("definitely-not-an-op-%d" % 0)
    with pytest.raises(ServerError):
        client.call("definitely-not-an-op-%d" % 1)
    _, families = _scrape(client)
    ops = {
        labels["op"]
        for _, labels, _ in (
            families["halotis_server_requests_total"]["samples"]
        )
    }
    # Client-chosen op strings must not mint label values.
    assert "(invalid)" in ops
    assert not any(op.startswith("definitely-not-an-op") for op in ops)


def test_stats_op_carries_metrics_snapshot(client):
    stats = client.stats()
    snapshot = stats["metrics"]
    assert snapshot["schema"] == 1
    assert "halotis_server_requests_total" in snapshot["metrics"]


def test_cli_stats_table(server, capsys):
    address = "%s:%d" % (server.host, server.port)
    assert main(["stats", "--connect", address]) == 0
    out = capsys.readouterr().out
    assert "vectors served" in out
    assert "metric families" in out


def test_cli_stats_json(server, capsys):
    address = "%s:%d" % (server.host, server.port)
    assert main(["stats", "--connect", address, "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metrics"]["schema"] == 1


def test_cli_stats_prometheus(server, capsys):
    address = "%s:%d" % (server.host, server.port)
    assert main(["stats", "--connect", address, "--prometheus"]) == 0
    families = parse_text(capsys.readouterr().out)
    assert "halotis_server_requests_total" in families
