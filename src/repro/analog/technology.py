"""Analog technology constants (the "0.6 um-like" 5 V process).

The numbers are not a foundry deck: they are chosen so that

* a unit inverter driving one gate load switches in ~0.1 ns,
* the multiplier's critical path settles within the paper's 5 ns vector
  period,
* narrow pulses degrade visibly over a handful of stages (the effect the
  IDDM models).

Unit system (see :mod:`repro.units`): V, ns, fF, uA — consistent because
1 uA = 1 fF * 1 V / 1 ns, so ``dV/dt = I/C`` needs no conversion factors.
"""

from __future__ import annotations

import dataclasses

from ..errors import LibraryError


@dataclasses.dataclass(frozen=True)
class Technology:
    """Process constants for the analog substrate.

    Attributes:
        name: identifier used in reports.
        vdd: supply voltage, V.
        vth_n / vth_p: threshold voltages (magnitudes), V.
        alpha_n / alpha_p: alpha-power-law velocity-saturation exponents.
        k_n / k_p: unit-width saturation transconductance, uA/V^alpha.
        kv_n / kv_p: saturation-voltage coefficients,
            ``Vdsat = kv * (Vgs - Vth)^(alpha/2)``.
        leak: tiny off-state conductance, uA/V — keeps rail voltages
            pinned and the ODE well-conditioned.
    """

    name: str = "tech06-analog"
    vdd: float = 5.0
    vth_n: float = 0.80
    vth_p: float = 0.90
    alpha_n: float = 1.30
    alpha_p: float = 1.40
    k_n: float = 115.0
    k_p: float = 105.0
    kv_n: float = 0.50
    kv_p: float = 0.55
    leak: float = 0.05

    def validate(self) -> None:
        if self.vdd <= 0.0:
            raise LibraryError("VDD must be positive")
        if not 0.0 < self.vth_n < self.vdd:
            raise LibraryError("NMOS threshold outside (0, VDD)")
        if not 0.0 < self.vth_p < self.vdd:
            raise LibraryError("PMOS threshold outside (0, VDD)")
        if self.alpha_n < 1.0 or self.alpha_p < 1.0:
            raise LibraryError("alpha exponents must be >= 1 (velocity saturation)")
        if self.k_n <= 0.0 or self.k_p <= 0.0:
            raise LibraryError("transconductances must be positive")
        if self.kv_n <= 0.0 or self.kv_p <= 0.0:
            raise LibraryError("saturation-voltage coefficients must be positive")
        if self.leak < 0.0:
            raise LibraryError("leak conductance must be >= 0")


_DEFAULT = Technology()
_DEFAULT.validate()


def default_technology() -> Technology:
    """The shared default :class:`Technology` (immutable)."""
    return _DEFAULT
