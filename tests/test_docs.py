"""The documentation is part of the contract: links must resolve.

Runs the same checker the CI docs job runs (``tools/check_links.py``)
over the repo's entry-point documents and the ``docs/`` tree, plus a
few direct assertions that the documents the README promises exist and
cover the public knobs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT))

import check_links  # noqa: E402


def test_repo_markdown_links_resolve(capsys):
    assert check_links.run(check_links.DEFAULT_FILES) == 0, (
        capsys.readouterr().err
    )


def test_docs_exist_and_are_linked_from_readme():
    readme = (REPO_ROOT / "README.md").read_text()
    for doc in ("docs/architecture.md", "docs/performance.md",
                "docs/observability.md", "docs/static_analysis.md"):
        assert (REPO_ROOT / doc).exists(), doc
        assert doc in readme, "README does not link %s" % doc


def test_performance_doc_covers_every_tuning_knob():
    performance = (REPO_ROOT / "docs" / "performance.md").read_text()
    for knob in ("engine_kind", "batch_jobs", "batch_chunk_size",
                 "service_workers", "shm_transport", "--pool-workers",
                 "--shm", "max_task_retries", "queue_kind"):
        assert knob in performance, "performance.md does not cover %s" % knob


def test_architecture_doc_names_every_layer():
    architecture = (REPO_ROOT / "docs" / "architecture.md").read_text()
    for anchor in ("Netlist.compile()", "ENGINE_KINDS", "simulate_batch",
                   "SimulationService", "fanout_offsets", "arc_rise",
                   "test_backend_parity", "test_service", "repro.obs"):
        assert anchor in architecture, (
            "architecture.md does not mention %s" % anchor
        )


def test_observability_doc_covers_the_monitoring_surface():
    """The metric catalogue must track the code: one row per published
    metric family, plus every scraping surface and CLI flag."""
    observability = (REPO_ROOT / "docs" / "observability.md").read_text()
    from repro.core import service as service_module
    from repro.server import app as app_module
    import inspect

    published = set()
    for module in (service_module, app_module):
        published.update(
            name
            for name in inspect.getsource(module).split('"')
            if name.startswith("halotis_")
        )
    for name in ("halotis_engine_runs_total", "halotis_engine_run_seconds",
                 "halotis_engine_phase_seconds",
                 "halotis_lockstep_waves_total",
                 "halotis_batch_vectors_total"):
        published.add(name)
    for name in sorted(published):
        assert name in observability, (
            "observability.md does not document %s" % name
        )
    for surface in ("--prometheus", "--json", "--log-level", "--log-json",
                    "collect_metrics", "result.metrics", "batch.metrics",
                    "parse_text", "(overflow)", "check_bench.py"):
        assert surface in observability, (
            "observability.md does not cover %s" % surface
        )


def test_static_analysis_doc_tracks_the_rule_registry():
    """docs/static_analysis.md is the halolint rule catalogue: every
    registered rule appears (id, name, invariant anchor), no retired
    rule id lingers, and the directive grammar is spelled out."""
    import re

    from tools.halolint.registry import RULES, load_rules

    load_rules()
    doc = (REPO_ROOT / "docs" / "static_analysis.md").read_text()
    assert RULES, "no halolint rules registered"
    for rule in RULES.values():
        assert rule.id in doc, (
            "static_analysis.md does not document %s" % rule.id
        )
        assert rule.name in doc, (
            "static_analysis.md does not name %s (%s)"
            % (rule.id, rule.name)
        )
        assert ("### %s — %s" % (rule.id, rule.name)) in doc, (
            "static_analysis.md has no section for %s" % rule.id
        )
    documented = set(re.findall(r"\bHL\d{3}\b", doc))
    stale = documented - set(RULES) - {"HL000"}
    assert not stale, (
        "static_analysis.md mentions unregistered rule ids: %s"
        % sorted(stale)
    )
    for directive in ("halolint: allow(", "halolint: guarded-by(",
                      "halolint: locked("):
        assert directive in doc, (
            "static_analysis.md does not document the %r directive"
            % directive
        )
    assert "baseline.json" in doc


def test_checker_flags_broken_links(tmp_path, capsys):
    bad = tmp_path / "bad.md"
    bad.write_text(
        "# Title\n\nSee [missing](no-such-file.md) and "
        "[bad anchor](#nowhere).\n"
    )
    assert check_links.run([str(bad)]) == 1
    err = capsys.readouterr().err
    assert "no-such-file.md" in err
    assert "nowhere" in err


def test_checker_flags_case_wrong_anchor(tmp_path, capsys):
    """GitHub anchors are lowercase; `#My-Heading` is broken rendered."""
    doc = tmp_path / "case.md"
    doc.write_text("# My Heading\n\nJump to [here](#My-Heading).\n")
    assert check_links.run([str(doc)]) == 1
    assert "My-Heading" in capsys.readouterr().err


def test_checker_accepts_anchors_and_skips_code_fences(tmp_path):
    good = tmp_path / "good.md"
    good.write_text(
        "# My Heading\n\nJump to [section](#my-heading).\n\n"
        "```\n[not a link](nonexistent.md)\n```\n"
    )
    assert check_links.run([str(good)]) == 0


def test_checker_missing_input_raises():
    with pytest.raises(FileNotFoundError):
        check_links.collect_files(["definitely-not-here.md"])
