"""Boolean evaluation of gate functions.

Logic values are plain ints ``0`` and ``1``.  The engine never propagates
unknowns: DC initialisation assigns a defined value to every net before any
event is processed, and events always carry a defined new value.
"""

from __future__ import annotations

import enum
from typing import Sequence, Union


class GateFunction(enum.Enum):
    """The boolean function computed by a gate type.

    Variable-arity functions (AND/NAND/OR/NOR/XOR/XNOR) accept any number of
    inputs >= 1; fixed-arity functions check their arity on evaluation.
    """

    BUF = "buf"
    INV = "inv"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX2 = "mux2"
    AOI21 = "aoi21"
    OAI21 = "oai21"
    MAJ3 = "maj3"

    @property
    def fixed_arity(self) -> int | None:
        """Number of inputs the function requires, or None if variable."""
        return _FIXED_ARITY.get(self)

    @property
    def is_inverting(self) -> bool:
        """True when the function's last stage is inverting.

        Used by the analog expansion: inverting functions map directly onto
        complementary CMOS gates, non-inverting ones need an output inverter.
        """
        return self in _INVERTING


_FIXED_ARITY = {
    GateFunction.BUF: 1,
    GateFunction.INV: 1,
    GateFunction.MUX2: 3,
    GateFunction.AOI21: 3,
    GateFunction.OAI21: 3,
    GateFunction.MAJ3: 3,
}

_INVERTING = frozenset(
    {
        GateFunction.INV,
        GateFunction.NAND,
        GateFunction.NOR,
        GateFunction.XNOR,
        GateFunction.AOI21,
        GateFunction.OAI21,
    }
)


class TableFunction:
    """An explicit truth-table gate function.

    Duck-types the :class:`GateFunction` surface the evaluation layers
    touch (``name``, ``fixed_arity``, ``is_inverting``), but computes the
    output by table lookup instead of enum dispatch.  This is how the
    fault-injection layer (:mod:`repro.faults`) expresses mutated cells
    — a stuck-at or bit-flipped gate has no named boolean function — so
    one stand-in object drives the reference engine, DC initialisation
    and any re-lowering identically.

    ``table`` follows the :func:`truth_table` convention: entry ``i`` is
    the output for the assignment whose bit ``k`` (LSB = input 0) is
    ``(i >> k) & 1``; its length must be a power of two.
    """

    __slots__ = ("name", "table", "arity")

    def __init__(self, name: str, table: Sequence[int]):
        size = len(table)
        if size == 0 or size & (size - 1):
            raise ValueError(
                "truth table length must be a power of two, got %d" % size
            )
        for entry in table:
            if entry not in (0, 1):
                raise ValueError(
                    "truth table entries must be 0 or 1, got %r" % (entry,)
                )
        self.name = name
        self.table = tuple(table)
        self.arity = size.bit_length() - 1

    @property
    def fixed_arity(self) -> int:
        return self.arity

    @property
    def is_inverting(self) -> bool:
        # Only consulted by the analog expansion, which never sees
        # table-driven cells; an inverting-stage answer is meaningless
        # for an arbitrary table.
        return False

    def __repr__(self) -> str:
        return "TableFunction(%s, arity=%d)" % (self.name, self.arity)


#: What a gate-function slot may hold: the enum member for healthy
#: cells, a :class:`TableFunction` stand-in for mutated ones.  This is
#: the element type of ``CompiledNetlist.gate_functions`` and of
#: ``CellSpec.function`` under fault injection.
GateFunctionLike = Union[GateFunction, TableFunction]


def evaluate(function, values: Sequence[int]) -> int:
    """Evaluate ``function`` on input ``values`` (each 0 or 1).

    ``function`` is a :class:`GateFunction` member or a
    :class:`TableFunction` stand-in.

    Raises:
        ValueError: on an arity mismatch or a non-binary input value.
    """
    arity = function.fixed_arity
    if arity is not None and len(values) != arity:
        raise ValueError(
            "%s expects %d inputs, got %d" % (function.name, arity, len(values))
        )
    if not values:
        raise ValueError("%s expects at least one input" % function.name)
    for value in values:
        if value not in (0, 1):
            raise ValueError("logic values must be 0 or 1, got %r" % (value,))

    if isinstance(function, TableFunction):
        index = 0
        for position, value in enumerate(values):
            index |= value << position
        return function.table[index]
    if function is GateFunction.BUF:
        return values[0]
    if function is GateFunction.INV:
        return 1 - values[0]
    if function is GateFunction.AND:
        return int(all(values))
    if function is GateFunction.NAND:
        return int(not all(values))
    if function is GateFunction.OR:
        return int(any(values))
    if function is GateFunction.NOR:
        return int(not any(values))
    if function is GateFunction.XOR:
        return sum(values) & 1
    if function is GateFunction.XNOR:
        return 1 - (sum(values) & 1)
    if function is GateFunction.MUX2:
        d0, d1, sel = values
        return d1 if sel else d0
    if function is GateFunction.AOI21:
        a, b, c = values
        return int(not ((a and b) or c))
    if function is GateFunction.OAI21:
        a, b, c = values
        return int(not ((a or b) and c))
    if function is GateFunction.MAJ3:
        return int(sum(values) >= 2)
    raise ValueError("unhandled gate function %r" % (function,))


def truth_table(function, arity: int) -> list[int]:
    """Return the function's truth table as a flat list.

    Entry ``i`` is the output for the input assignment whose bit ``k``
    (LSB = input 0) is ``(i >> k) & 1``.  Useful for exhaustive gate tests
    and for cross-checking macro expansions.  A :class:`TableFunction`
    returns a copy of its stored table directly.
    """
    if isinstance(function, TableFunction):
        if arity != function.arity:
            raise ValueError(
                "%s has fixed arity %d, got %d"
                % (function.name, function.arity, arity)
            )
        return list(function.table)
    fixed = function.fixed_arity
    if fixed is not None and arity != fixed:
        raise ValueError(
            "%s has fixed arity %d, got %d" % (function.name, fixed, arity)
        )
    table = []
    for assignment in range(1 << arity):
        values = [(assignment >> k) & 1 for k in range(arity)]
        table.append(evaluate(function, values))
    return table
