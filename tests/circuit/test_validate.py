"""Electrical rule checks."""

import pytest

from repro.circuit import validate
from repro.circuit.builder import CircuitBuilder
from repro.circuit.netlist import Netlist
from repro.errors import NetlistError


def _clean():
    builder = CircuitBuilder(name="clean")
    a = builder.input("a")
    builder.output(builder.inv(a), "y")
    return builder.netlist


def test_clean_netlist_passes():
    report = validate.check(_clean())
    assert report.ok
    assert not report.findings
    report.raise_on_error()


def test_undriven_net_is_error():
    netlist = _clean()
    netlist.add_net("floating")
    report = validate.check(netlist)
    assert not report.ok
    assert any(f.rule == "undriven-net" for f in report.errors)
    with pytest.raises(NetlistError):
        report.raise_on_error()


def test_unread_net_is_warning():
    builder = CircuitBuilder(name="unread")
    a = builder.input("a")
    builder.inv(a)  # output never read nor marked
    report = validate.check(builder.netlist)
    assert report.ok  # warnings only
    assert any(f.rule == "unread-net" for f in report.warnings)


def test_unused_input_is_warning():
    builder = CircuitBuilder(name="unused")
    builder.input("a")
    b = builder.input("b")
    builder.output(builder.inv(b), "y")
    report = validate.check(builder.netlist)
    assert any(f.rule == "unused-input" for f in report.warnings)


def test_missing_interface_warnings():
    netlist = Netlist("empty")
    report = validate.check(netlist)
    rules = {f.rule for f in report.warnings}
    assert "no-inputs" in rules
    assert "no-outputs" in rules


def test_cycle_severity_depends_on_flag():
    from repro.circuit import modules

    latch = modules.rs_latch()
    strict = validate.check(latch)
    assert any(f.rule == "combinational-cycle" for f in strict.errors)
    relaxed = validate.check(latch, allow_cycles=True)
    assert relaxed.ok
    assert any(f.rule == "combinational-cycle" for f in relaxed.warnings)


def test_finding_str_format():
    report = validate.check(_clean())
    netlist = _clean()
    netlist.add_net("floating2")
    report = validate.check(netlist)
    text = str(report.errors[0])
    assert "undriven-net" in text
    assert "error" in text


def test_raw_and_lowered_cycle_verdicts_agree():
    """``check()`` now cross-checks its raw-graph cycle verdict against
    the compiled lowering's, so ``compile()`` can never silently
    diverge from ``check()`` — on both an acyclic and a cyclic input."""
    from repro.circuit import modules

    acyclic = validate.check(modules.array_multiplier(4))
    assert not any(
        f.rule.startswith("lowering") for f in acyclic.findings
    )

    cyclic = validate.check(modules.rs_latch(), allow_cycles=True)
    assert cyclic.ok
    assert not any(
        f.rule.startswith("lowering") for f in cyclic.findings
    )


def test_lowering_cycle_divergence_is_an_error(monkeypatch):
    """Teeth: a lowering whose topological sort wrongly succeeds on a
    cyclic netlist must surface as a validation ERROR."""
    from repro.circuit import modules
    from repro.core.compiled import CompiledNetlist

    latch = modules.rs_latch()  # built before the corruption
    monkeypatch.setattr(
        CompiledNetlist, "topological_order", lambda self: []
    )
    report = validate.check(latch, allow_cycles=True)
    assert any(
        f.rule == "lowering-cycle-divergence" for f in report.errors
    )


def test_lowering_failure_is_an_error(monkeypatch):
    from repro.circuit import modules
    from repro.circuit.netlist import Netlist
    from repro.errors import SimulationError

    netlist = modules.c17()  # built before the corruption

    def boom(self):
        raise SimulationError("injected lowering failure")

    monkeypatch.setattr(Netlist, "compile", boom)
    report = validate.check(netlist)
    assert any(f.rule == "lowering-failed" for f in report.errors)
