"""Prometheus text exposition and the minimal parser.

Pins the exposition format the server's ``metrics`` op serves (version
0.0.4: HELP/TYPE headers, escaped label values, cumulative buckets with
``+Inf``, ``_sum``/``_count``) and the strict parser the CI smoke job
uses to validate a live scrape — including that the two roundtrip.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.prometheus import parse_text, render, render_snapshot
from repro.obs.registry import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_and_gauge_exposition(registry):
    registry.counter("runs_total", "Completed runs.", ("engine",)).inc(
        3, engine="compiled"
    )
    registry.gauge("inflight", "In-flight requests.").set(2.0)
    text = render(registry)
    assert "# HELP runs_total Completed runs." in text
    assert "# TYPE runs_total counter" in text
    assert 'runs_total{engine="compiled"} 3' in text
    assert "# TYPE inflight gauge" in text
    assert "inflight 2" in text
    assert text.endswith("\n")


def test_histogram_exposition_is_cumulative(registry):
    histogram = registry.histogram("h_seconds", "", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        histogram.observe(value)
    text = render(registry)
    assert 'h_seconds_bucket{le="0.1"} 1' in text
    assert 'h_seconds_bucket{le="1"} 2' in text
    assert 'h_seconds_bucket{le="+Inf"} 3' in text
    assert "h_seconds_count 3" in text
    assert "h_seconds_sum 5.55" in text


def test_label_value_escaping_roundtrips(registry):
    tricky = 'quote " slash \\ newline \n end'
    registry.counter("c_total", "", ("name",)).inc(name=tricky)
    text = render(registry)
    parsed = parse_text(text)
    [(sample, labels, value)] = parsed["c_total"]["samples"]
    assert sample == "c_total"
    assert labels == {"name": tricky}
    assert value == 1.0


def test_help_newlines_are_escaped(registry):
    registry.counter("c_total", "line one\nline two").inc()
    text = render(registry)
    assert "# HELP c_total line one\\nline two" in text
    assert parse_text(text)["c_total"]["help"] == "line one\\nline two"


def test_parse_roundtrips_a_mixed_registry(registry):
    registry.counter("runs_total", "runs", ("engine",)).inc(
        5, engine="vector"
    )
    registry.gauge("open_connections").set(1.0)
    histogram = registry.histogram(
        "latency_seconds", "lat", ("op",), buckets=(0.01, 0.1)
    )
    histogram.observe(0.05, op="simulate")
    histogram.observe(0.05, op="simulate")
    parsed = parse_text(render(registry))
    assert parsed["runs_total"]["type"] == "counter"
    assert parsed["open_connections"]["type"] == "gauge"
    assert parsed["latency_seconds"]["type"] == "histogram"
    samples = parsed["latency_seconds"]["samples"]
    by_name = {}
    for sample_name, labels, value in samples:
        by_name.setdefault(sample_name, []).append((labels, value))
    assert by_name["latency_seconds_count"] == [({"op": "simulate"}, 2.0)]
    inf_buckets = [
        value for labels, value in by_name["latency_seconds_bucket"]
        if labels["le"] == "+Inf"
    ]
    assert inf_buckets == [2.0]


def test_render_snapshot_matches_render(registry):
    registry.counter("c_total", "", ("k",)).inc(k="v")
    registry.histogram("h", "", buckets=(1.0,)).observe(0.5)
    assert render_snapshot(registry.snapshot()) == render(registry)


def test_render_snapshot_rejects_non_snapshots():
    with pytest.raises(ValueError, match="missing 'metrics'"):
        render_snapshot({"schema": 1})


def test_special_float_values(registry):
    gauge = registry.gauge("g")
    gauge.set(math.inf)
    parsed = parse_text(render(registry))
    [(_, _, value)] = parsed["g"]["samples"]
    assert value == math.inf


def test_parser_rejects_malformed_samples():
    with pytest.raises(ValueError, match="malformed sample"):
        parse_text("this is { not a metric\n")
    with pytest.raises(ValueError, match="malformed label set"):
        parse_text('c_total{name=unquoted} 1\n')
    with pytest.raises(ValueError, match="unknown metric type"):
        parse_text("# TYPE c_total chart\n")


def test_parser_validates_histogram_consistency():
    header = "# TYPE h histogram\n"
    with pytest.raises(ValueError, match=r"lacks a \+Inf bucket"):
        parse_text(header + 'h_bucket{le="1"} 1\nh_count 1\n')
    with pytest.raises(ValueError, match="not cumulative"):
        parse_text(
            header
            + 'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\nh_count 3\n'
        )
    with pytest.raises(ValueError, match="!= _count"):
        parse_text(
            header
            + 'h_bucket{le="1"} 1\nh_bucket{le="+Inf"} 2\nh_count 9\n'
        )


def test_parser_ignores_plain_comments_and_blank_lines():
    parsed = parse_text("\n# a free-form comment\nc_total 1\n\n")
    assert parsed["c_total"]["type"] == "untyped"
    assert parsed["c_total"]["samples"] == [("c_total", {}, 1.0)]
