"""Fixed-width text tables for experiment reports.

Small, dependency-free table renderer used by the experiment drivers and
EXPERIMENTS.md generation.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import AnalysisError


class Table:
    """A fixed-width table with a header row.

    >>> t = Table(["seq", "events"])
    >>> t.add_row(["0x0,7x7", 959])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = ""):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, cells: Sequence[object]) -> None:
        if len(cells) != len(self.headers):
            raise AnalysisError(
                "row has %d cells, table has %d columns"
                % (len(cells), len(self.headers))
            )
        self.rows.append([_format_cell(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for column, cell in enumerate(row):
                widths[column] = max(widths[column], len(cell))
        parts: List[str] = []
        if self.title:
            parts.append(self.title)
        parts.append(_render_line(self.headers, widths))
        parts.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            parts.append(_render_line(row, widths))
        return "\n".join(parts)

    def render_markdown(self) -> str:
        parts: List[str] = []
        if self.title:
            parts.append("**%s**" % self.title)
            parts.append("")
        parts.append("| " + " | ".join(self.headers) + " |")
        parts.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            parts.append("| " + " | ".join(row) + " |")
        return "\n".join(parts)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return "%.4g" % cell
    return str(cell)


def _render_line(cells: Sequence[str], widths: Sequence[int]) -> str:
    return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))


def paper_comparison(
    title: str,
    rows: Sequence[Sequence[object]],
    headers: Optional[Sequence[str]] = None,
) -> str:
    """Render a "paper vs measured" block for EXPERIMENTS.md."""
    table = Table(headers or ["quantity", "paper", "measured", "shape holds?"],
                  title=title)
    for row in rows:
        table.add_row(row)
    return table.render()
