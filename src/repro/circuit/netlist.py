"""Netlist data structures.

This is the paper's Figure 2 class diagram rendered in Python:

* ``Netlist`` owns ``Net`` objects (the paper calls them *Lines*) and
  ``Gate`` objects;
* each ``Gate`` has an ordered list of ``GateInput`` pins and exactly one
  output ``Net``;
* a ``Net`` knows its single driver and its fanout ``GateInput`` list —
  the relation the kernel walks when it broadcasts a new transition.

The structures here are *static*: dynamic simulation state (current input
values, last output transition, pending events) lives in
:mod:`repro.core.state` so that several simulators can share one netlist.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional

from ..errors import ConnectivityError, NetlistError
from .cells import CellSpec

if TYPE_CHECKING:
    from ..core.compiled import CompiledNetlist


class Net:
    """A circuit node (the paper's *Line*).

    Attributes:
        name: unique net name.
        driver: the gate driving this net, or None for primary inputs and
            constants.
        fanouts: every :class:`GateInput` reading this net.
        wire_cap: extra interconnect capacitance in fF.
        is_primary_input / is_primary_output: interface flags.
        constant_value: 0 or 1 for tie-cells, else None.
    """

    __slots__ = (
        "name",
        "driver",
        "fanouts",
        "wire_cap",
        "is_primary_input",
        "is_primary_output",
        "constant_value",
        "index",
    )

    def __init__(self, name: str, wire_cap: float = 0.0):
        self.name = name
        self.driver: Optional[Gate] = None
        self.fanouts: List[GateInput] = []
        self.wire_cap = wire_cap
        self.is_primary_input = False
        self.is_primary_output = False
        self.constant_value: Optional[int] = None
        #: dense index assigned by the owning netlist (stable iteration /
        #: array-based simulator state).
        self.index = -1

    @property
    def is_constant(self) -> bool:
        return self.constant_value is not None

    def load(self) -> float:
        """Total capacitive load on this net in fF.

        Sum of fanout pin caps, wire capacitance, and the driver's own
        output (drain) capacitance.
        """
        total = self.wire_cap
        for gate_input in self.fanouts:
            total += gate_input.cap
        if self.driver is not None:
            total += self.driver.cell.output_cap
        return total

    def __repr__(self) -> str:
        return "Net(%r)" % self.name


class GateInput:
    """One input pin instance of one gate.

    Attributes:
        gate: owning gate.
        index: pin position within the gate (the ``i`` of eqs. 2-3).
        net: the net this pin reads.
        vt: effective switching threshold in volts.  Defaults to the cell
            pin's threshold; the builder may override it per instance.
        cap: input capacitance in fF (from the cell pin).
    """

    __slots__ = ("gate", "index", "net", "vt", "cap", "uid")

    def __init__(self, gate: Gate, index: int, net: Net, vt: float, cap: float):
        self.gate = gate
        self.index = index
        self.net = net
        self.vt = vt
        self.cap = cap
        #: dense id across the netlist, assigned by the owning netlist.
        self.uid = -1

    def __repr__(self) -> str:
        return "GateInput(%s.%s <- %s)" % (
            self.gate.name,
            self.gate.cell.pins[self.index].name,
            self.net.name,
        )


class Gate:
    """One gate instance.

    Attributes:
        name: unique instance name.
        cell: the library :class:`CellSpec`.
        inputs: ordered :class:`GateInput` pins.
        output: the driven net.
    """

    __slots__ = ("name", "cell", "inputs", "output", "index")

    def __init__(self, name: str, cell: CellSpec, output: Net):
        self.name = name
        self.cell = cell
        self.inputs: List[GateInput] = []
        self.output = output
        self.index = -1

    def input_nets(self) -> List[Net]:
        return [gate_input.net for gate_input in self.inputs]

    def __repr__(self) -> str:
        return "Gate(%s:%s)" % (self.name, self.cell.name)


class Netlist:
    """A flat, single-output-per-gate gate-level netlist.

    Construction is normally done through
    :class:`repro.circuit.builder.CircuitBuilder`; the methods here are the
    low-level primitives it uses.
    """

    def __init__(self, name: str = "top", vdd: float = 5.0):
        self.name = name
        self.vdd = vdd
        self.nets: Dict[str, Net] = {}
        self.gates: Dict[str, Gate] = {}
        self.primary_inputs: List[Net] = []
        self.primary_outputs: List[Net] = []
        #: bumped on every structural change; lets ``compile()`` cache.
        self._structure_version = 0
        self._compiled_cache = None

    # ------------------------------------------------------------------
    # construction primitives
    # ------------------------------------------------------------------

    def add_net(self, name: str, wire_cap: float = 0.0) -> Net:
        if name in self.nets:
            raise NetlistError("duplicate net name %r" % name)
        net = Net(name, wire_cap=wire_cap)
        net.index = len(self.nets)
        self.nets[name] = net
        self._structure_version += 1
        return net

    def add_primary_input(self, name: str) -> Net:
        net = self.add_net(name)
        net.is_primary_input = True
        self.primary_inputs.append(net)
        return net

    def add_constant(self, name: str, value: int) -> Net:
        if value not in (0, 1):
            raise NetlistError("constant value must be 0 or 1")
        net = self.add_net(name)
        net.constant_value = value
        return net

    def mark_primary_output(self, net: Net) -> None:
        if not net.is_primary_output:
            net.is_primary_output = True
            self.primary_outputs.append(net)
            # The lowering captures primary-output flags, so marking an
            # output after a compile() must invalidate the cached
            # CompiledNetlist (it would otherwise miss the new output).
            self._structure_version += 1

    def add_gate(
        self,
        name: str,
        cell: CellSpec,
        input_nets: Iterable[Net],
        output_net: Net,
        vt_overrides: Optional[Dict[int, float]] = None,
    ) -> Gate:
        """Instantiate ``cell`` with the given connectivity.

        Args:
            vt_overrides: optional per-pin-index threshold overrides in
                volts (used by experiments that need instance-specific
                thresholds without defining a new cell).
        """
        if name in self.gates:
            raise NetlistError("duplicate gate name %r" % name)
        if output_net.driver is not None:
            raise ConnectivityError(
                "net %r already driven by %s" % (output_net.name, output_net.driver.name)
            )
        if output_net.is_primary_input or output_net.is_constant:
            raise ConnectivityError(
                "net %r is a primary input/constant and cannot be driven" % output_net.name
            )
        input_list = list(input_nets)
        if len(input_list) != cell.num_inputs:
            raise ConnectivityError(
                "gate %s: cell %s has %d pins, got %d nets"
                % (name, cell.name, cell.num_inputs, len(input_list))
            )
        gate = Gate(name, cell, output_net)
        gate.index = len(self.gates)
        for pin_index, net in enumerate(input_list):
            pin = cell.pins[pin_index]
            vt = pin.vt
            if vt_overrides and pin_index in vt_overrides:
                vt = vt_overrides[pin_index]
            if not 0.0 < vt < self.vdd:
                raise ConnectivityError(
                    "gate %s pin %d: threshold %.3f V outside (0, VDD)"
                    % (name, pin_index, vt)
                )
            gate_input = GateInput(gate, pin_index, net, vt=vt, cap=pin.cap)
            gate.inputs.append(gate_input)
            net.fanouts.append(gate_input)
        output_net.driver = gate
        self.gates[name] = gate
        self._renumber_inputs()
        self._structure_version += 1
        return gate

    def _renumber_inputs(self) -> None:
        uid = 0
        for gate in self.gates.values():
            for gate_input in gate.inputs:
                gate_input.uid = uid
                uid += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def num_gate_inputs(self) -> int:
        return sum(len(gate.inputs) for gate in self.gates.values())

    def net(self, name: str) -> Net:
        try:
            return self.nets[name]
        except KeyError:
            raise NetlistError("unknown net %r" % name) from None

    def gate(self, name: str) -> Gate:
        try:
            return self.gates[name]
        except KeyError:
            raise NetlistError("unknown gate %r" % name) from None

    def iter_gate_inputs(self) -> Iterator[GateInput]:
        for gate in self.gates.values():
            yield from gate.inputs

    def invalidate_lowering(self) -> None:
        """Force the next :meth:`compile` to re-lower the netlist.

        Every ``Netlist`` method that changes structure (``add_net``,
        ``add_gate``, ``mark_primary_output``, renames) already
        invalidates the cache.  Call this after mutating attributes
        *directly* — e.g. assigning ``net.wire_cap`` or a
        ``GateInput.vt`` on an already-built circuit — since the
        lowering folds loads and thresholds into its arrays and cannot
        observe those assignments.
        """
        self._structure_version += 1

    def compile(self) -> CompiledNetlist:
        """Lower this netlist into struct-of-arrays form.

        Returns a :class:`repro.core.compiled.CompiledNetlist` snapshot
        of the current structure.  The lowering is cached and reused
        until the netlist changes structurally (``add_net``,
        ``add_gate``, ``mark_primary_output``, net renames, or an
        explicit :meth:`invalidate_lowering`), so repeated simulations
        of the same circuit pay the lowering cost once.
        """
        cached = self._compiled_cache
        if cached is not None and cached[0] == self._structure_version:
            return cached[1]
        from ..core.compiled import CompiledNetlist

        compiled = CompiledNetlist(self)
        self._compiled_cache = (self._structure_version, compiled)
        return compiled

    def source_nets(self) -> List[Net]:
        """Nets with no driving gate: primary inputs and constants."""
        return [net for net in self.nets.values() if net.driver is None]

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------

    def __reduce__(self):
        """Pickle via a flat snapshot instead of the object graph.

        The Net <-> Gate <-> GateInput graph is deeply self-referential,
        so default pickling recurses once per connectivity edge and
        overflows the interpreter stack on circuits of a few hundred
        gates.  Reducing to primitive records (and rebuilding
        iteratively) keeps pickling O(size) with O(1) stack — this is
        what lets batched simulation ship one netlist to worker
        processes (:mod:`repro.core.batch`), and it makes
        ``copy.deepcopy`` work on large circuits as a side effect.
        """
        return (_rebuild_netlist, (self._flat_state(),))

    def _flat_state(self) -> Dict[str, object]:
        """Primitive-only snapshot of the full netlist structure.

        Preserves dict insertion order, dense indices, pin-exact
        ``vt``/``cap`` values (which may have been overridden per
        instance) and whether a lowering was cached, so the rebuilt
        netlist is behaviourally indistinguishable from the original.
        """
        cached = self._compiled_cache
        return {
            "name": self.name,
            "vdd": self.vdd,
            "nets": [
                (
                    net.name,
                    net.wire_cap,
                    net.is_primary_input,
                    net.is_primary_output,
                    net.constant_value,
                    net.index,
                )
                for net in self.nets.values()
            ],
            "primary_inputs": [net.name for net in self.primary_inputs],
            "primary_outputs": [net.name for net in self.primary_outputs],
            "gates": [
                (
                    gate.name,
                    gate.cell,
                    gate.output.name,
                    [gate_input.net.name for gate_input in gate.inputs],
                    [gate_input.vt for gate_input in gate.inputs],
                    [gate_input.cap for gate_input in gate.inputs],
                    gate.index,
                )
                for gate in self.gates.values()
            ],
            "version": self._structure_version,
            # The lowered arrays travel with the snapshot (the lowering
            # strips its netlist back-reference for transport, see
            # CompiledNetlist.__getstate__), so a worker process starts
            # warm without re-lowering.
            "compiled": (
                cached[1]
                if cached is not None and cached[0] == self._structure_version
                else None
            ),
        }

    # ------------------------------------------------------------------
    # ordering
    # ------------------------------------------------------------------

    def topological_gates(self) -> List[Gate]:
        """Gates in topological (driver-before-reader) order.

        Raises:
            NetlistError: when the netlist has a combinational cycle; the
                message names one gate on the cycle.  Feedback circuits
                (e.g. the RS-latch example) must use relaxation-based
                initialisation instead.
        """
        remaining_fanin: Dict[Gate, int] = {}
        ready: List[Gate] = []
        for gate in self.gates.values():
            fanin = sum(1 for gi in gate.inputs if gi.net.driver is not None)
            remaining_fanin[gate] = fanin
            if fanin == 0:
                ready.append(gate)
        order: List[Gate] = []
        cursor = 0
        while cursor < len(ready):
            gate = ready[cursor]
            cursor += 1
            order.append(gate)
            for reader in gate.output.fanouts:
                remaining_fanin[reader.gate] -= 1
                if remaining_fanin[reader.gate] == 0:
                    ready.append(reader.gate)
        if len(order) != len(self.gates):
            stuck = next(g for g, n in remaining_fanin.items() if n > 0)
            raise NetlistError(
                "combinational cycle detected (through gate %r)" % stuck.name
            )
        return order

    def has_cycle(self) -> bool:
        try:
            self.topological_gates()
        except NetlistError:
            return True
        return False

    def __repr__(self) -> str:
        return "Netlist(%s: %d gates, %d nets)" % (
            self.name,
            len(self.gates),
            len(self.nets),
        )


def _rebuild_netlist(state: Dict[str, object]) -> Netlist:
    """Inverse of :meth:`Netlist._flat_state` (module-level so pickles
    reference it by qualified name)."""
    netlist = Netlist(state["name"], vdd=state["vdd"])
    for name, wire_cap, is_pi, is_po, constant, index in state["nets"]:
        net = Net(name, wire_cap=wire_cap)
        net.is_primary_input = is_pi
        net.is_primary_output = is_po
        net.constant_value = constant
        net.index = index
        netlist.nets[name] = net
    netlist.primary_inputs = [netlist.nets[n] for n in state["primary_inputs"]]
    netlist.primary_outputs = [netlist.nets[n] for n in state["primary_outputs"]]
    for name, cell, output_name, input_names, vts, caps, index in state["gates"]:
        output_net = netlist.nets[output_name]
        gate = Gate(name, cell, output_net)
        gate.index = index
        for pin_index, input_name in enumerate(input_names):
            gate_input = GateInput(
                gate,
                pin_index,
                netlist.nets[input_name],
                vt=vts[pin_index],
                cap=caps[pin_index],
            )
            gate.inputs.append(gate_input)
            netlist.nets[input_name].fanouts.append(gate_input)
        output_net.driver = gate
        netlist.gates[name] = gate
    netlist._renumber_inputs()
    netlist._structure_version = state["version"]
    compiled = state["compiled"]
    if compiled is not None and compiled.netlist is None:
        # Adopt the transported lowering only when it is detached
        # (pickle/deepcopy strip the back-reference).  copy.copy hands
        # the *live* lowering through the shared state dict — adopting
        # that one would steal it from the original netlist, so a
        # shallow copy simply starts cold and re-lowers on demand.
        compiled.netlist = netlist
        netlist._compiled_cache = (netlist._structure_version, compiled)
    return netlist
